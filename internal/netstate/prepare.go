package netstate

import (
	"errors"
	"fmt"

	"spacebooking/internal/energy"
)

// Two-phase commit over the reservation ledgers.
//
// The single-phase path (Begin → reserve/consume → Commit | Rollback)
// applies deltas as it goes and either keeps them or restores
// snapshots. Prepare splits the decision point in two: it pins the
// transaction's exact link-capacity and battery-energy deltas — they
// stay applied, so concurrent admissions on the same state price
// against them — and detaches them from the transaction arena into a
// Prepared held in the state's prepare ledger. Commit keeps the deltas
// (and performs the commit-time hot-spot observation, exactly like the
// single-phase Commit); Abort releases them.
//
// Abort is byte-identical to Rollback when the prepared batteries are
// untouched since Prepare (snapshot restore, guarded by per-battery
// version counters). When another reservation committed on the same
// battery in between — the cluster's cross-shard interleavings — Abort
// refunds the pinned consumption steps instead, releasing exactly the
// solar/deficit this transaction claimed while preserving everyone
// else's.

// ErrPreparedLeak is wrapped by CheckPreparedDrained when prepared
// reservations are still outstanding at the end of a run — a
// coordinator failed to settle a two-phase booking.
var ErrPreparedLeak = errors.New("netstate: prepared reservations outstanding")

// CommitInterceptor, when installed, receives every Txn.Commit as a
// Prepared instead of a direct commit. The interceptor owns the
// Prepared's lifecycle: it must call Commit or Abort (possibly after
// coordinating with other states) and its error is surfaced from
// Txn.Commit. The cluster's cross-shard coordinator is the one
// interceptor in the tree.
type CommitInterceptor func(p *Prepared) error

// SetCommitInterceptor installs (or with nil, removes) the commit
// interceptor, enabling two-phase mode as a side effect. Call before
// the run starts; the State is single-owner.
func (s *State) SetCommitInterceptor(fn CommitInterceptor) {
	s.intercept = fn
	if fn != nil {
		s.EnableTwoPhase()
	}
}

// EnableTwoPhase turns on consumption-step recording, the prerequisite
// for Txn.Prepare. The recorded steps change no ledger arithmetic —
// commits stay byte-identical — but cost a few appends per admission,
// so the mode is opt-in and the batch simulator never pays it.
func (s *State) EnableTwoPhase() {
	if s.twoPhase {
		return
	}
	s.twoPhase = true
	if s.batVer == nil {
		s.batVer = make([]uint64, len(s.batteries))
	}
}

// TwoPhaseEnabled reports whether Prepare is available on this state.
func (s *State) TwoPhaseEnabled() bool { return s.twoPhase }

// prepareLedger tracks outstanding Prepared reservations by id.
type prepareLedger struct {
	byID   map[uint64]*Prepared
	nextID uint64
}

func (l *prepareLedger) add(p *Prepared) {
	if l.byID == nil {
		l.byID = make(map[uint64]*Prepared)
	}
	l.byID[p.id] = p
}

// Prepared is a pinned-but-undecided reservation: the exact link and
// battery deltas of one transaction, held applied until Commit or
// Abort. Like the State it belongs to, it is single-writer.
type Prepared struct {
	state *State
	id    uint64
	links []linkReservation
	cons  []consRecord
	steps []energy.ConsumeStep
	dod   []dodPend
	// Per touched battery: the pre-transaction snapshot (ownership moved
	// out of the txn arena) and the battery's version at Prepare time.
	touched []int
	snaps   []*energy.Battery
	vers    []uint64
	done    bool
}

// Prepare pins the open transaction's deltas and detaches them into a
// Prepared registered in the state's prepare ledger. The transaction is
// finished afterwards (like Commit/Rollback); the returned Prepared is
// the sole handle on the pinned resources. Requires two-phase mode.
func (t *Txn) Prepare() (*Prepared, error) {
	if t.done {
		return nil, fmt.Errorf("netstate: transaction already finished")
	}
	s := t.state
	if !s.twoPhase {
		return nil, fmt.Errorf("netstate: Prepare requires two-phase mode (EnableTwoPhase)")
	}
	t.done = true
	a := &s.txn
	s.prep.nextID++
	p := &Prepared{state: s, id: s.prep.nextID}
	p.links = append(p.links, a.linkUndo...)
	p.cons = append(p.cons, a.cons...)
	p.steps = append(p.steps, a.steps...)
	p.dod = append(p.dod, a.dod...)
	for _, sat := range a.touched {
		p.touched = append(p.touched, sat)
		// Move the snapshot out of the arena: the next Begin re-clones
		// lazily, and the snapshot stays frozen at this txn's pre-state.
		p.snaps = append(p.snaps, a.snaps[sat])
		p.vers = append(p.vers, s.batVer[sat])
		a.snaps[sat] = nil
	}
	s.prep.add(p)
	s.instr.txnPrepares.Inc()
	return p, nil
}

// ID returns the prepare-ledger id of this reservation.
func (p *Prepared) ID() uint64 { return p.id }

// EachLink visits every pinned link reservation.
func (p *Prepared) EachLink(fn func(key LinkKey, slot int, rateMbps float64)) {
	for i := range p.links {
		r := &p.links[i]
		fn(r.key, r.slot, r.rate)
	}
}

// EachConsumption visits every pinned energy consumption, in the order
// it was applied (slot-ascending for the admission algorithms' per-slot
// loops, which is the order a replay must preserve).
func (p *Prepared) EachConsumption(fn func(c Consumption)) {
	for i := range p.cons {
		fn(p.cons[i].c)
	}
}

// Commit keeps the pinned deltas, counts the commit and performs the
// commit-time hot-spot observation — the exact tail of the single-phase
// Txn.Commit. Idempotent.
func (p *Prepared) Commit() {
	if p.done {
		return
	}
	p.done = true
	s := p.state
	delete(s.prep.byID, p.id)
	s.instr.txnCommits.Inc()
	s.observePrepared(p)
}

// Abort releases the pinned deltas: link reservations are subtracted
// (exactly Rollback's reversal) and each touched battery is restored
// from its pre-transaction snapshot when nothing else has mutated it
// since Prepare — bit-exact, the common case — or has this
// transaction's consumption steps refunded otherwise. Idempotent.
func (p *Prepared) Abort() {
	if p.done {
		return
	}
	p.done = true
	s := p.state
	delete(s.prep.byID, p.id)
	s.instr.txnRollbacks.Inc()
	for _, r := range p.links {
		s.unreserveLink(r.key, r.slot, r.rate)
	}
	for i, sat := range p.touched {
		if s.batVer[sat] == p.vers[i] && p.snaps[i] != nil {
			s.batteries[sat].CopyFrom(p.snaps[i])
		} else {
			for _, cr := range p.cons {
				if cr.c.Sat != sat {
					continue
				}
				for j := cr.stepTo - 1; j >= cr.stepFrom; j-- {
					s.batteries[sat].Refund(p.steps[j])
				}
			}
		}
		s.batVer[sat]++
	}
}

// PreparedOutstanding returns the number of prepared reservations not
// yet committed or aborted.
func (s *State) PreparedOutstanding() int { return len(s.prep.byID) }

// CheckPreparedDrained returns nil when the prepare ledger is empty,
// or an error wrapping ErrPreparedLeak naming the leak count. The
// engine checks it at Finish: tests fail loudly on a leak, the serving
// layer logs it and keeps the result.
func (s *State) CheckPreparedDrained() error {
	if n := len(s.prep.byID); n > 0 {
		return fmt.Errorf("%w: %d prepared reservation(s) never committed or aborted", ErrPreparedLeak, n)
	}
	return nil
}
