package netstate

import (
	"fmt"
	"math"
	"time"

	"spacebooking/internal/graph"
	"spacebooking/internal/topology"
)

// This file is the routing fast path: a devirtualized twin of View plus
// graph.ShortestPath / graph.ShortestPathHopLimited, specialised to the
// per-slot LSN. The generic path dispatches every edge through the
// Adjacency interface and a VisitNeighbors closure; at paper scale that
// indirection — plus the fresh View, dist/prev arrays and heap per
// (request, slot) — dominates every figure run. FlatView iterates the
// provider's CSR-flattened ISL grid and the frozen USL visibility lists
// directly, and SearchScratch owns every array the searches need,
// epoch-stamped so reuse across slots and requests costs no clearing
// beyond a stamp bump.
//
// The generic path (View + graph searches) stays as the reference
// implementation; TestFlatViewMatchesGenericView asserts byte-identical
// decisions between the two. Every semantic subtlety here — heap
// comparison directions, neighbour visit order, strict-< relaxation,
// the order of floating-point additions — deliberately replicates the
// generic code so the equivalence holds exactly, not approximately.

// flatItem is a priority-queue entry over (node, incoming-class) states.
type flatItem struct {
	state int32
	dist  float64
}

// flatHeap replicates graph's searchHeap byte for byte (push `<=`,
// pop-child `<`), so the flat Dijkstra settles equal-cost states in
// exactly the order the generic search would.
type flatHeap struct {
	items []flatItem
}

func (h *flatHeap) reset() { h.items = h.items[:0] }

func (h *flatHeap) push(it flatItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *flatHeap) pop() flatItem {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.items[r].dist < h.items[l].dist {
			child = r
		}
		if h.items[i].dist <= h.items[child].dist {
			break
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
	return top
}

// flatPred records how a search state was reached.
type flatPred struct {
	state int32
	edge  graph.Edge
}

// flatHopPred records how a hop-limited DP state was reached.
type flatHopPred struct {
	hop   int32
	state int32
	edge  graph.Edge
}

// SearchScratch is the pooled working memory of the routing fast path:
// the per-slot FlatView itself, the destination-visibility stamps, the
// per-edge price caches, and the Dijkstra / hop-limited-DP arrays. One
// scratch serves every slot of every request of a run — arrays are
// sized to the provider on first use and invalidated by epoch stamps
// rather than cleared, so a warm scratch makes view construction and
// search allocation-free.
//
// A SearchScratch is single-owner (one goroutine, one run at a time).
// The experiment scheduler pools scratches at its worker boundary via
// sync.Pool so parallel runs stay isolated; within a run, CEAR, the
// baselines and the adaptive controller's rebuilt inner instances may
// all share one scratch because a run handles requests sequentially.
type SearchScratch struct {
	view FlatView

	// Sizing of the current arrays; rebuilt when the provider changes.
	numSats   int
	numEdges  int
	numStates int

	// viewEpoch invalidates the per-view caches (dst visibility and the
	// demand-dependent edge prices); bumped once per BuildView.
	viewEpoch uint32
	dstStamp  []uint32 // dstStamp[sat]==viewEpoch: sat sees the dst

	// Per-static-ISL-edge priced cost, and per-satellite dst-USL cost,
	// memoised for the current view: a satellite can be expanded once
	// per incoming class, and the price is state-independent within one
	// search, so the first computation is authoritative.
	edgeCostVal  []float64
	edgeStamp    []uint32
	dstCostVal   []float64
	dstCostStamp []uint32

	// searchEpoch invalidates dist/prev between searches.
	searchEpoch uint32
	stateStamp  []uint32
	dist        []float64
	prev        []flatPred
	heap        flatHeap

	// Hop-limited DP ladders: cur/next cost rows and the flattened
	// hop-indexed predecessor table (row h at [h*numStates:(h+1)*numStates]).
	cur   []float64
	next  []float64
	preds []flatHopPred

	// Path-reconstruction reversal buffers.
	nodesRev []int
	edgesRev []graph.Edge

	// uses counts views built on this scratch; builds after the first
	// are reuses (reported through the owning state's counters).
	uses uint64
}

// NewSearchScratch returns an empty scratch; arrays are sized by the
// first BuildView.
func NewSearchScratch() *SearchScratch { return &SearchScratch{} }

// ensure sizes the arrays for a provider, resetting all epochs when the
// dimensions change (a scratch may migrate between providers, e.g. via
// the experiment scheduler's pool).
func (sc *SearchScratch) ensure(numSats, numEdges int) {
	numStates := (numSats + 2) * graph.NumClasses
	if numSats == sc.numSats && numEdges == sc.numEdges {
		return
	}
	sc.numSats, sc.numEdges, sc.numStates = numSats, numEdges, numStates
	sc.dstStamp = make([]uint32, numSats)
	sc.edgeCostVal = make([]float64, numEdges)
	sc.edgeStamp = make([]uint32, numEdges)
	sc.dstCostVal = make([]float64, numSats)
	sc.dstCostStamp = make([]uint32, numSats)
	sc.stateStamp = make([]uint32, numStates)
	sc.dist = make([]float64, numStates)
	sc.prev = make([]flatPred, numStates)
	sc.viewEpoch, sc.searchEpoch = 0, 0
	// The DP ladders are sized lazily by ensureHopLadders (most runs
	// never use the hop-limited search).
	sc.cur, sc.next, sc.preds = nil, nil, nil
}

// bumpViewEpoch advances the view epoch, clearing stamp arrays on the
// (once per 2^32 views) wrap so stale stamps can never alias.
func (sc *SearchScratch) bumpViewEpoch() {
	sc.viewEpoch++
	if sc.viewEpoch == 0 {
		clearUint32(sc.dstStamp)
		clearUint32(sc.edgeStamp)
		clearUint32(sc.dstCostStamp)
		sc.viewEpoch = 1
	}
}

// bumpSearchEpoch advances the search epoch with the same wrap guard.
func (sc *SearchScratch) bumpSearchEpoch() {
	sc.searchEpoch++
	if sc.searchEpoch == 0 {
		clearUint32(sc.stateStamp)
		sc.searchEpoch = 1
	}
}

func clearUint32(a []uint32) {
	for i := range a {
		a[i] = 0
	}
}

// ensureHopLadders sizes the hop-limited DP rows on demand.
func (sc *SearchScratch) ensureHopLadders(maxHops int) {
	if cap(sc.cur) < sc.numStates {
		sc.cur = make([]float64, sc.numStates)
		sc.next = make([]float64, sc.numStates)
	}
	sc.cur = sc.cur[:sc.numStates]
	sc.next = sc.next[:sc.numStates]
	total := (maxHops + 1) * sc.numStates
	if cap(sc.preds) < total {
		sc.preds = make([]flatHopPred, total)
	}
	sc.preds = sc.preds[:total]
}

// FlatView is the devirtualized twin of View: the same per-slot routing
// graph — CSR ISL fabric plus the request's USL endpoint edges — walked
// by the specialised searches below as direct slice iteration instead
// of interface dispatch. It is embedded in its SearchScratch and
// re-initialised in place by BuildView, so building one allocates
// nothing once the scratch is warm.
type FlatView struct {
	sc    *SearchScratch
	state *State
	prov  *topology.Provider
	csr   *topology.CSR

	slot       int
	demandMbps float64
	cost       EdgeCostFunc

	src, dst   topology.Endpoint
	srcGID     int
	dstGID     int
	srcVisible []int
	numSats    int
}

// BuildView initialises the scratch's FlatView for one (request, slot)
// pair: the fast-path analogue of NewView. The returned view is valid
// until the next BuildView on the same scratch.
func (sc *SearchScratch) BuildView(state *State, slot int, src, dst topology.Endpoint, demandMbps float64, cost EdgeCostFunc) (*FlatView, error) {
	if state == nil {
		return nil, fmt.Errorf("netstate: nil state")
	}
	if cost == nil {
		return nil, fmt.Errorf("netstate: nil cost function")
	}
	if demandMbps <= 0 {
		return nil, fmt.Errorf("netstate: demand must be positive, got %v", demandMbps)
	}
	prov := state.prov
	srcVis, err := prov.VisibleSats(src, slot)
	if err != nil {
		return nil, fmt.Errorf("netstate: source visibility: %w", err)
	}
	dstVis, err := prov.VisibleSats(dst, slot)
	if err != nil {
		return nil, fmt.Errorf("netstate: destination visibility: %w", err)
	}
	csr := prov.ISLCSR()
	sc.ensure(prov.NumSats(), csr.NumEdges())
	sc.bumpViewEpoch()
	for _, sat := range dstVis {
		sc.dstStamp[sat] = sc.viewEpoch
	}
	sc.view = FlatView{
		sc:         sc,
		state:      state,
		prov:       prov,
		csr:        csr,
		slot:       slot,
		demandMbps: demandMbps,
		cost:       cost,
		src:        src,
		dst:        dst,
		srcGID:     prov.GlobalID(src),
		dstGID:     prov.GlobalID(dst),
		srcVisible: srcVis,
		numSats:    prov.NumSats(),
	}
	sc.uses++
	if sc.uses > 1 {
		state.instr.scratchReuses.Inc()
	}
	return &sc.view, nil
}

// N mirrors View.N: satellites plus the two endpoint nodes.
func (v *FlatView) N() int { return v.numSats + 2 }

// SrcNode returns the search-space node index of the request source.
func (v *FlatView) SrcNode() int { return v.numSats }

// DstNode returns the search-space node index of the request destination.
func (v *FlatView) DstNode() int { return v.numSats + 1 }

// Slot returns the slot this view prices.
func (v *FlatView) Slot() int { return v.slot }

// DemandMbps returns the per-slot demand the view was built for.
func (v *FlatView) DemandMbps() float64 { return v.demandMbps }

// globalID maps a search node to the provider's global node-ID space.
func (v *FlatView) globalID(node int) int {
	switch node {
	case v.SrcNode():
		return v.srcGID
	case v.DstNode():
		return v.dstGID
	default:
		return node
	}
}

// LinkKeyFor returns the ledger key of the directed link between two
// search-space nodes.
func (v *FlatView) LinkKeyFor(from, to int) LinkKey {
	return MakeLinkKey(v.globalID(from), v.globalID(to))
}

// priceEdge replicates View.priceEdge: capacity feasibility masks the
// edge before the cost function prices it. Masked edges feed the blame
// scratch exactly like the generic path (the memoised cost caches mean
// a blocked edge is reported once per view rather than once per visit,
// which is equivalent for the max-utilization blame rule).
func (v *FlatView) priceEdge(from, to int, class graph.EdgeClass) float64 {
	key := v.LinkKeyFor(from, to)
	capacity := v.state.linkCapacity(key)
	used := v.state.LinkUsedMbps(key, v.slot)
	if used+v.demandMbps > capacity*(1+1e-12) {
		v.state.noteBlockedLink(key, used/capacity)
		return math.Inf(1)
	}
	return v.cost(key, class, capacity, used/capacity)
}

// islCost returns the priced cost of CSR edge idx (sat -> to), memoised
// per view: the price only depends on committed state, which cannot
// change mid-search, so the first computation is authoritative.
func (v *FlatView) islCost(idx, sat, to int) float64 {
	sc := v.sc
	if sc.edgeStamp[idx] == sc.viewEpoch {
		return sc.edgeCostVal[idx]
	}
	c := v.priceEdge(sat, to, graph.ClassISL)
	sc.edgeCostVal[idx] = c
	sc.edgeStamp[idx] = sc.viewEpoch
	return c
}

// dstCost returns the priced cost of the sat -> dst USL edge, memoised
// per view.
func (v *FlatView) dstCost(sat int) float64 {
	sc := v.sc
	if sc.dstCostStamp[sat] == sc.viewEpoch {
		return sc.dstCostVal[sat]
	}
	c := v.priceEdge(sat, v.DstNode(), graph.ClassUSL)
	sc.dstCostVal[sat] = c
	sc.dstCostStamp[sat] = sc.viewEpoch
	return c
}

// VisitNeighbors walks the view's edges in the exact order the search
// kernels relax them (src: visible-sat USLs; sat: CSR ISLs, then the
// dst USL last; dst: sink), emitting +Inf-priced edges like the generic
// View does. The kernels do not use it — it exists so cross-check tests
// and debugging tools can compare a FlatView against a View edge for
// edge.
func (v *FlatView) VisitNeighbors(node int, fn func(graph.Edge) bool) {
	switch {
	case node == v.SrcNode():
		for _, sat := range v.srcVisible {
			c := v.priceEdge(node, sat, graph.ClassUSL)
			if !fn(graph.Edge{To: sat, Class: graph.ClassUSL, Cost: c}) {
				return
			}
		}
	case node == v.DstNode():
		// Destination is a sink.
	default:
		for i, end := int(v.csr.Offsets[node]), int(v.csr.Offsets[node+1]); i < end; i++ {
			to := int(v.csr.To[i])
			c := v.islCost(i, node, to)
			if !fn(graph.Edge{To: to, Class: graph.ClassISL, Cost: c}) {
				return
			}
		}
		if v.sc.dstStamp[node] == v.sc.viewEpoch {
			c := v.dstCost(node)
			if !fn(graph.Edge{To: v.DstNode(), Class: graph.ClassUSL, Cost: c}) {
				return
			}
		}
	}
}

// Search finds the min-cost src->dst path over this view: hop-limited DP
// when maxHops > 0, Dijkstra otherwise — the flat twins of the generic
// graph searches, with the same transit-cost semantics.
//
// budgetBase and budgetLimit implement opt-in budget pruning: labels (or
// whole searches) whose accumulated plan price budgetBase plus current
// cost exceeds budgetLimit are abandoned, because admission would reject
// any completion. Pass budgetLimit = +Inf to disable. The third return
// value reports whether pruning discarded anything: when the search then
// fails, the caller should classify the rejection as priced-out rather
// than no-path.
//
// Pruning is exact, not heuristic. Dijkstra prunes at pop time only:
// pop costs are nondecreasing, so the first over-budget pop proves every
// remaining completion is over budget (floating-point addition of
// non-negative terms is monotone) — and until that point the heap's
// dynamics are bit-identical to an unpruned run, so accepted requests
// take exactly the same paths. The hop-limited DP prunes labels at
// relaxation time, which is safe there because it has no heap: the
// relaxation order is fixed by the loops, and an over-budget label can
// never beat an under-budget one (that would require it to be strictly
// cheaper, contradicting monotonicity).
func (v *FlatView) Search(transit graph.TransitCostFunc, maxHops int, budgetBase, budgetLimit float64) (path graph.Path, ok, pruned bool) {
	// Search wall time feeds the serving layer's per-request phase
	// breakdown; the counter is nil (one branch, no clock reads) unless
	// trace detail is enabled on the state.
	var t0 time.Time
	in := v.state.GraphInstruments()
	timed := in != nil && in.SearchNanos != nil
	if timed {
		t0 = time.Now()
	}
	if maxHops > 0 {
		path, ok, pruned = v.hopLimited(transit, maxHops, budgetBase, budgetLimit)
	} else {
		path, ok, pruned = v.dijkstra(transit, budgetBase, budgetLimit)
	}
	if timed {
		in.SearchNanos.Add(time.Since(t0).Nanoseconds())
	}
	return path, ok, pruned
}

// dijkstra is the flat twin of graph.ShortestPathWith over this view.
func (v *FlatView) dijkstra(transit graph.TransitCostFunc, budgetBase, budgetLimit float64) (graph.Path, bool, bool) {
	sc := v.sc
	in := v.state.GraphInstruments()
	var pops, relaxes, prunedN int64
	pruned := false

	sc.bumpSearchEpoch()
	epoch := sc.searchEpoch
	dist, prev, stamp := sc.dist, sc.prev, sc.stateStamp

	srcNode, dstNode := v.SrcNode(), v.DstNode()
	start := srcNode*graph.NumClasses + int(graph.ClassNone)
	dist[start] = 0
	prev[start] = flatPred{state: -1}
	stamp[start] = epoch

	h := &sc.heap
	h.reset()
	h.push(flatItem{state: int32(start), dist: 0})

	// relax mirrors the generic search's closure body: strict-< on the
	// stamped dist, first writer wins.
	relax := func(from int32, fromDist float64, to int, cls graph.EdgeClass, edgeCost, w float64) {
		ns := to*graph.NumClasses + int(cls)
		nd := fromDist + w
		if stamp[ns] == epoch && nd >= dist[ns] {
			return
		}
		dist[ns] = nd
		prev[ns] = flatPred{state: from, edge: graph.Edge{To: to, Class: cls, Cost: edgeCost}}
		stamp[ns] = epoch
		h.push(flatItem{state: int32(ns), dist: nd})
	}

	var path graph.Path
	found := false
	for len(h.items) > 0 {
		cur := h.pop()
		pops++
		st := int(cur.state)
		if cur.dist > dist[st] {
			continue // stale entry
		}
		// Budget cutoff: pop costs are nondecreasing, so once the
		// cheapest frontier label is over budget, every completion is.
		if budgetBase+cur.dist > budgetLimit {
			pruned = true
			prunedN += int64(len(h.items)) + 1
			break
		}
		node := st / graph.NumClasses
		inClass := graph.EdgeClass(st % graph.NumClasses)
		if node == dstNode {
			path = v.reconstruct(st, cur.dist)
			found = true
			break
		}
		switch {
		case node == srcNode:
			for _, sat := range v.srcVisible {
				relaxes++
				c := v.priceEdge(srcNode, sat, graph.ClassUSL)
				if math.IsInf(c, 1) {
					continue
				}
				// The source pays no transit (node == src in the
				// generic search).
				relax(cur.state, cur.dist, sat, graph.ClassUSL, c, c)
			}
		default:
			sat := node
			for i, end := int(v.csr.Offsets[sat]), int(v.csr.Offsets[sat+1]); i < end; i++ {
				relaxes++
				to := int(v.csr.To[i])
				c := v.islCost(i, sat, to)
				if math.IsInf(c, 1) {
					continue
				}
				w := c
				if transit != nil {
					tc := transit(sat, inClass, graph.ClassISL)
					if math.IsInf(tc, 1) {
						continue
					}
					w += tc
				}
				relax(cur.state, cur.dist, to, graph.ClassISL, c, w)
			}
			if sc.dstStamp[sat] == sc.viewEpoch {
				relaxes++
				c := v.dstCost(sat)
				if !math.IsInf(c, 1) {
					w := c
					ok := true
					if transit != nil {
						tc := transit(sat, inClass, graph.ClassUSL)
						if math.IsInf(tc, 1) {
							ok = false
						} else {
							w += tc
						}
					}
					if ok {
						relax(cur.state, cur.dist, dstNode, graph.ClassUSL, c, w)
					}
				}
			}
		}
	}
	if in != nil {
		in.HeapPops.Add(pops)
		in.EdgeRelaxations.Add(relaxes)
		in.FastPathSearches.Inc()
		in.PrunedLabels.Add(prunedN)
	}
	return path, found, pruned
}

// hopLimited is the flat twin of graph.ShortestPathHopLimitedWith over
// this view.
func (v *FlatView) hopLimited(transit graph.TransitCostFunc, maxHops int, budgetBase, budgetLimit float64) (graph.Path, bool, bool) {
	sc := v.sc
	in := v.state.GraphInstruments()
	var relaxes, prunedN int64
	prunedAny := false

	numStates := sc.numStates
	const inf = math.MaxFloat64
	sc.ensureHopLadders(maxHops)
	cur, next, preds := sc.cur, sc.next, sc.preds
	for i := range cur {
		cur[i] = inf
		next[i] = inf
	}

	srcNode, dstNode := v.SrcNode(), v.DstNode()
	startState := srcNode*graph.NumClasses + int(graph.ClassNone)
	cur[startState] = 0

	bestCost := inf
	bestHop, bestState := -1, -1

	for h := 1; h <= maxHops; h++ {
		for i := range next {
			next[i] = inf
		}
		row := preds[h*numStates : (h+1)*numStates]
		for i := range row {
			row[i] = flatHopPred{state: -1}
		}
		relax := func(st int, d float64, to int, cls graph.EdgeClass, edgeCost, w float64) {
			ns := to*graph.NumClasses + int(cls)
			nd := d + w
			if nd >= next[ns] {
				return
			}
			if budgetBase+nd > budgetLimit {
				prunedAny = true
				prunedN++
				return
			}
			next[ns] = nd
			row[ns] = flatHopPred{hop: int32(h - 1), state: int32(st), edge: graph.Edge{To: to, Class: cls, Cost: edgeCost}}
		}
		// Node-major, class-minor iteration, matching the generic DP.
		for node := 0; node < v.numSats+2; node++ {
			for c := 0; c < graph.NumClasses; c++ {
				st := node*graph.NumClasses + c
				d := cur[st]
				if d == inf {
					continue
				}
				switch {
				case node == dstNode:
					// Sink: no outgoing edges.
				case node == srcNode:
					for _, sat := range v.srcVisible {
						relaxes++
						ec := v.priceEdge(srcNode, sat, graph.ClassUSL)
						if math.IsInf(ec, 1) {
							continue
						}
						relax(st, d, sat, graph.ClassUSL, ec, ec)
					}
				default:
					sat := node
					for i, end := int(v.csr.Offsets[sat]), int(v.csr.Offsets[sat+1]); i < end; i++ {
						relaxes++
						to := int(v.csr.To[i])
						ec := v.islCost(i, sat, to)
						if math.IsInf(ec, 1) {
							continue
						}
						w := ec
						if transit != nil {
							tc := transit(sat, graph.EdgeClass(c), graph.ClassISL)
							if math.IsInf(tc, 1) {
								continue
							}
							w += tc
						}
						relax(st, d, to, graph.ClassISL, ec, w)
					}
					if sc.dstStamp[sat] == sc.viewEpoch {
						relaxes++
						ec := v.dstCost(sat)
						if !math.IsInf(ec, 1) {
							w := ec
							ok := true
							if transit != nil {
								tc := transit(sat, graph.EdgeClass(c), graph.ClassUSL)
								if math.IsInf(tc, 1) {
									ok = false
								} else {
									w += tc
								}
							}
							if ok {
								relax(st, d, dstNode, graph.ClassUSL, ec, w)
							}
						}
					}
				}
			}
		}
		cur, next = next, cur
		for c := 0; c < graph.NumClasses; c++ {
			st := dstNode*graph.NumClasses + c
			if cur[st] < bestCost {
				bestCost = cur[st]
				bestHop, bestState = h, st
			}
		}
		// No early exit: a longer path can still be cheaper.
	}

	if in != nil {
		in.EdgeRelaxations.Add(relaxes)
		in.FastPathSearches.Inc()
		in.PrunedLabels.Add(prunedN)
	}
	if bestState < 0 {
		return graph.Path{}, false, prunedAny
	}

	// Reconstruct through the hop-indexed predecessors.
	sc.nodesRev = append(sc.nodesRev[:0], bestState/graph.NumClasses)
	sc.edgesRev = sc.edgesRev[:0]
	h, st := bestHop, bestState
	for h > 0 {
		p := preds[h*numStates+st]
		if p.state < 0 {
			break
		}
		sc.edgesRev = append(sc.edgesRev, p.edge)
		sc.nodesRev = append(sc.nodesRev, int(p.state)/graph.NumClasses)
		h, st = int(p.hop), int(p.state)
	}
	return sc.buildPath(bestCost), true, prunedAny
}

// reconstruct walks the Dijkstra predecessor links back to the source.
func (v *FlatView) reconstruct(dstState int, cost float64) graph.Path {
	sc := v.sc
	sc.nodesRev = sc.nodesRev[:0]
	sc.edgesRev = sc.edgesRev[:0]
	s := dstState
	for {
		sc.nodesRev = append(sc.nodesRev, s/graph.NumClasses)
		p := sc.prev[s]
		if p.state < 0 {
			break
		}
		sc.edgesRev = append(sc.edgesRev, p.edge)
		s = int(p.state)
	}
	return sc.buildPath(cost)
}

// buildPath materialises a path from the reversal buffers; only the two
// returned slices are allocated.
func (sc *SearchScratch) buildPath(cost float64) graph.Path {
	nodes := make([]int, len(sc.nodesRev))
	for i := range sc.nodesRev {
		nodes[i] = sc.nodesRev[len(sc.nodesRev)-1-i]
	}
	edges := make([]graph.Edge, len(sc.edgesRev))
	for i := range sc.edgesRev {
		edges[i] = sc.edgesRev[len(sc.edgesRev)-1-i]
	}
	return graph.Path{Nodes: nodes, Edges: edges, Cost: cost}
}

// AppendConsumptions is the allocation-free twin of View.PathConsumptions:
// it appends the path's per-satellite energy consumptions to buf (reset
// to length zero first) and returns the extended slice, so one buffer
// serves every slot of a run.
func (v *FlatView) AppendConsumptions(p graph.Path, buf []Consumption) []Consumption {
	buf = buf[:0]
	if len(p.Nodes) < 3 {
		return buf
	}
	slotSec := v.prov.Config().SlotSeconds
	for i := 1; i < len(p.Nodes)-1; i++ {
		sat := p.Nodes[i]
		inClass := p.Edges[i-1].Class
		outClass := p.Edges[i].Class
		j := v.state.energyCfg.TransitEnergyJ(inClass, outClass, v.demandMbps, slotSec)
		if j > 0 {
			buf = append(buf, Consumption{Sat: sat, Slot: v.slot, Joules: j})
		}
	}
	return buf
}
