package netstate

import (
	"math"
	"testing"
	"time"

	"spacebooking/internal/graph"
	"spacebooking/internal/grid"
	"spacebooking/internal/topology"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

func smallProvider(t *testing.T, sites []grid.Site) *topology.Provider {
	t.Helper()
	cfg := topology.DefaultConfig(testEpoch)
	cfg.Walker.Planes = 8
	cfg.Walker.SatsPerPlane = 12
	cfg.Walker.PhasingF = 3
	cfg.Horizon = 20
	p, err := topology.NewProvider(cfg, sites, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestState(t *testing.T, sites []grid.Site, clamp bool) *State {
	t.Helper()
	s, err := New(smallProvider(t, sites), DefaultEnergyConfig(), clamp)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLinkKeyRoundTrip(t *testing.T) {
	tests := []struct{ from, to int }{
		{0, 0}, {1, 2}, {1583, 1584}, {3344, 12}, {1 << 20, 1<<20 + 7},
	}
	for _, tt := range tests {
		k := MakeLinkKey(tt.from, tt.to)
		if k.From() != tt.from || k.To() != tt.to {
			t.Errorf("key(%d,%d) round-trips to (%d,%d)", tt.from, tt.to, k.From(), k.To())
		}
	}
	if MakeLinkKey(1, 2) == MakeLinkKey(2, 1) {
		t.Error("directed keys must differ")
	}
}

func TestEnergyConfigValidate(t *testing.T) {
	good := DefaultEnergyConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*EnergyConfig)
	}{
		{"negative panel", func(c *EnergyConfig) { c.PanelWatts = -1 }},
		{"zero battery", func(c *EnergyConfig) { c.BatteryCapacityJ = 0 }},
		{"negative unit", func(c *EnergyConfig) { c.USLRxJPerMB = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultEnergyConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestTransitEnergyRoles(t *testing.T) {
	c := DefaultEnergyConfig()
	const rate, slotSec = 1000.0, 60.0 // 1000 Mbps for 60 s = 7500 MB
	mb := rate * slotSec / 8
	tests := []struct {
		name    string
		in, out graph.EdgeClass
		want    float64
	}{
		{"relay (ISL/ISL)", graph.ClassISL, graph.ClassISL, mb * (0.2 + 0.25)},
		{"ingress gateway (USL/ISL)", graph.ClassUSL, graph.ClassISL, mb * (0.8 + 0.25)},
		{"egress gateway (ISL/USL)", graph.ClassISL, graph.ClassUSL, mb * (0.2 + 1.0)},
		{"single-hop sat (USL/USL)", graph.ClassUSL, graph.ClassUSL, mb * (0.8 + 1.0)},
		{"no incoming", graph.ClassNone, graph.ClassISL, mb * 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := c.TransitEnergyJ(tt.in, tt.out, rate, slotSec)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("energy = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStateConstruction(t *testing.T) {
	s := newTestState(t, nil, false)
	if s.Provider().NumSats() != 96 {
		t.Fatalf("NumSats = %d", s.Provider().NumSats())
	}
	// Every satellite has a full battery of the configured capacity.
	for sat := 0; sat < 96; sat++ {
		b := s.Battery(sat)
		if b.CapacityJ() != 117000 {
			t.Fatalf("satellite %d capacity %v", sat, b.CapacityJ())
		}
		if b.LevelAt(0) != 117000 {
			t.Fatalf("satellite %d not full at start", sat)
		}
	}
	// Batteries of sunlit satellites have solar input.
	found := false
	for sat := 0; sat < 96 && !found; sat++ {
		if s.Provider().Sunlit(0, sat) && s.Battery(sat).SolarRemainingAt(0) == 20*60 {
			found = true
		}
	}
	if !found {
		t.Error("no sunlit satellite has the expected 1200 J solar input")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, DefaultEnergyConfig(), false); err == nil {
		t.Error("nil provider should error")
	}
	bad := DefaultEnergyConfig()
	bad.BatteryCapacityJ = -1
	if _, err := New(smallProvider(t, nil), bad, false); err == nil {
		t.Error("bad energy config should error")
	}
}

func TestLinkCapacityByKind(t *testing.T) {
	s := newTestState(t, []grid.Site{{ID: 0}}, false)
	numSats := s.Provider().NumSats()
	isl := MakeLinkKey(0, 1)
	usl := MakeLinkKey(numSats, 3) // ground site -> satellite
	if got := s.LinkCapacityMbps(isl); got != 20000 {
		t.Errorf("ISL capacity = %v", got)
	}
	if got := s.LinkCapacityMbps(usl); got != 4000 {
		t.Errorf("USL capacity = %v", got)
	}
}

func TestReserveAndQueryLink(t *testing.T) {
	s := newTestState(t, nil, false)
	key := MakeLinkKey(0, 1)
	if got := s.LinkUtilization(key, 3); got != 0 {
		t.Errorf("fresh utilization = %v", got)
	}
	if err := s.ReserveLink(key, 3, 5000); err != nil {
		t.Fatal(err)
	}
	if got := s.LinkUsedMbps(key, 3); got != 5000 {
		t.Errorf("used = %v", got)
	}
	if got := s.LinkUtilization(key, 3); got != 0.25 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
	if got := s.LinkResidualMbps(key, 3); got != 15000 {
		t.Errorf("residual = %v", got)
	}
	// Other slots unaffected.
	if got := s.LinkUsedMbps(key, 4); got != 0 {
		t.Errorf("slot 4 used = %v", got)
	}
	if s.NumActiveLinks() != 1 {
		t.Errorf("active links = %d", s.NumActiveLinks())
	}
}

func TestReserveLinkOverSubscription(t *testing.T) {
	s := newTestState(t, nil, false)
	key := MakeLinkKey(0, 1)
	if err := s.ReserveLink(key, 0, 19000); err != nil {
		t.Fatal(err)
	}
	if err := s.ReserveLink(key, 0, 1500); err == nil {
		t.Fatal("over-subscription accepted")
	}
	// Failed reservation must not change the ledger.
	if got := s.LinkUsedMbps(key, 0); got != 19000 {
		t.Errorf("used = %v after failed reservation", got)
	}
	// Exactly filling is allowed.
	if err := s.ReserveLink(key, 0, 1000); err != nil {
		t.Errorf("exact fill rejected: %v", err)
	}
}

func TestReserveLinkArgErrors(t *testing.T) {
	s := newTestState(t, nil, false)
	key := MakeLinkKey(0, 1)
	if err := s.ReserveLink(key, 0, 0); err == nil {
		t.Error("zero rate should error")
	}
	if err := s.ReserveLink(key, 0, -5); err == nil {
		t.Error("negative rate should error")
	}
	if err := s.ReserveLink(key, -1, 5); err == nil {
		t.Error("negative slot should error")
	}
	if err := s.ReserveLink(key, 999, 5); err == nil {
		t.Error("beyond-horizon slot should error")
	}
}

func TestCongestedLinkCount(t *testing.T) {
	s := newTestState(t, nil, false)
	a, b := MakeLinkKey(0, 1), MakeLinkKey(1, 2)
	if err := s.ReserveLink(a, 2, 19000); err != nil { // residual 1000 < 10% of 20000
		t.Fatal(err)
	}
	if err := s.ReserveLink(b, 2, 10000); err != nil { // residual 10000, not congested
		t.Fatal(err)
	}
	if got := s.CongestedLinkCount(2, 0.1); got != 1 {
		t.Errorf("congested count = %d, want 1", got)
	}
	if got := s.CongestedLinkCount(3, 0.1); got != 0 {
		t.Errorf("slot 3 congested count = %d, want 0", got)
	}
}

func TestDepletedSatCount(t *testing.T) {
	s := newTestState(t, nil, false)
	if got := s.DepletedSatCount(0, 0.2); got != 0 {
		t.Fatalf("fresh state depleted = %d", got)
	}
	// Drain satellite 0 to 10% of capacity at slot 5.
	b := s.Battery(0)
	drain := b.CapacityJ()*0.9 + b.SolarRemainingAt(5)
	if err := b.Consume(5, drain); err != nil {
		t.Fatal(err)
	}
	if got := s.DepletedSatCount(5, 0.2); got != 1 {
		t.Errorf("depleted = %d, want 1", got)
	}
	if got := s.DepletedSatCount(0, 0.2); got != 0 {
		t.Errorf("slot 0 depleted = %d, want 0", got)
	}
}

func TestTrialAndCommitConsume(t *testing.T) {
	s := newTestState(t, nil, false)
	capJ := s.Battery(0).CapacityJ()
	// Find a slot where satellite 0 is in umbra so solar cannot absorb.
	dark := -1
	for slot := 0; slot < s.Provider().Horizon(); slot++ {
		if !s.Provider().Sunlit(slot, 0) {
			dark = slot
			break
		}
	}
	if dark < 0 {
		t.Skip("satellite 0 never in umbra within horizon")
	}
	good := []Consumption{{Sat: 0, Slot: dark, Joules: capJ * 0.4}, {Sat: 0, Slot: dark, Joules: capJ * 0.4}}
	if err := s.TrialConsume(good); err != nil {
		t.Fatalf("feasible trial rejected: %v", err)
	}
	// Trial must not mutate.
	if s.Battery(0).DeficitAt(dark) != 0 {
		t.Fatal("TrialConsume mutated the battery")
	}
	bad := []Consumption{{Sat: 0, Slot: dark, Joules: capJ * 0.7}, {Sat: 0, Slot: dark, Joules: capJ * 0.7}}
	if err := s.TrialConsume(bad); err == nil {
		t.Fatal("infeasible trial accepted")
	}
	if err := s.Consume(good); err != nil {
		t.Fatal(err)
	}
	if got := s.Battery(0).DeficitAt(dark); math.Abs(got-capJ*0.8) > 1e-6 {
		t.Errorf("deficit = %v, want %v", got, capJ*0.8)
	}
}
