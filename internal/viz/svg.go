// Package viz renders LSN snapshots as standalone SVG documents: ground
// sites, satellite sub-points, inter-satellite links and highlighted
// request paths on an equirectangular world map. No dependencies; the
// output opens in any browser.
package viz

import (
	"fmt"
	"sort"
	"strings"
)

// Canvas dimensions: 2 SVG units per degree.
const (
	widthUnits  = 720.0
	heightUnits = 360.0
)

// Map is an SVG scene under construction. The zero value is not usable;
// create with NewMap.
type Map struct {
	elements []string
	title    string
}

// NewMap starts an empty scene.
func NewMap(title string) *Map {
	return &Map{title: title}
}

// project converts geodetic degrees into SVG coordinates
// (equirectangular: x from longitude, y from latitude, north up).
func project(latDeg, lonDeg float64) (x, y float64) {
	x = (lonDeg + 180) * 2
	y = (90 - latDeg) * 2
	return x, y
}

// esc escapes the XML-special characters of a label.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// AddSite draws a ground site as a small square.
func (m *Map) AddSite(latDeg, lonDeg float64, color string) {
	x, y := project(latDeg, lonDeg)
	m.elements = append(m.elements, fmt.Sprintf(
		`<rect x="%.1f" y="%.1f" width="3" height="3" fill="%s"/>`, x-1.5, y-1.5, esc(color)))
}

// AddSatellite draws a satellite sub-point as a circle; sunlit
// satellites get the given fill, eclipsed ones are darkened.
func (m *Map) AddSatellite(latDeg, lonDeg float64, sunlit bool, color string) {
	x, y := project(latDeg, lonDeg)
	fill := color
	if !sunlit {
		fill = "#444466"
	}
	m.elements = append(m.elements, fmt.Sprintf(
		`<circle cx="%.1f" cy="%.1f" r="1.6" fill="%s"/>`, x, y, esc(fill)))
}

// AddLink draws a line between two geodetic points, splitting segments
// that cross the antimeridian so they do not streak across the map.
func (m *Map) AddLink(lat1, lon1, lat2, lon2 float64, color string, width float64) {
	if wrapsAntimeridian(lon1, lon2) {
		// Draw two half segments toward the nearer edge.
		midLat := (lat1 + lat2) / 2
		if lon1 > 0 {
			m.addSegment(lat1, lon1, midLat, 180, color, width)
			m.addSegment(midLat, -180, lat2, lon2, color, width)
		} else {
			m.addSegment(lat1, lon1, midLat, -180, color, width)
			m.addSegment(midLat, 180, lat2, lon2, color, width)
		}
		return
	}
	m.addSegment(lat1, lon1, lat2, lon2, color, width)
}

func wrapsAntimeridian(lon1, lon2 float64) bool {
	d := lon1 - lon2
	if d < 0 {
		d = -d
	}
	return d > 180
}

func (m *Map) addSegment(lat1, lon1, lat2, lon2 float64, color string, width float64) {
	x1, y1 := project(lat1, lon1)
	x2, y2 := project(lat2, lon2)
	m.elements = append(m.elements, fmt.Sprintf(
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f"/>`,
		x1, y1, x2, y2, esc(color), width))
}

// AddLabel places small text at a geodetic point.
func (m *Map) AddLabel(latDeg, lonDeg float64, text, color string) {
	x, y := project(latDeg, lonDeg)
	m.elements = append(m.elements, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="6" fill="%s">%s</text>`, x+3, y-3, esc(color), esc(text)))
}

// Legend describes one legend row.
type Legend struct {
	Color string
	Text  string
}

// Render assembles the SVG document. Elements draw in insertion order
// (later on top); the graticule and legend are added automatically.
func (m *Map) Render(legends []Legend) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %.0f %.0f">`+"\n",
		widthUnits, heightUnits+30)
	b.WriteString(`<rect width="100%" height="100%" fill="#0b1026"/>` + "\n")

	// Graticule every 30 degrees.
	for lon := -180.0; lon <= 180; lon += 30 {
		x, _ := project(0, lon)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="0" x2="%.1f" y2="%.0f" stroke="#1c2447" stroke-width="0.4"/>`+"\n",
			x, x, heightUnits)
	}
	for lat := -60.0; lat <= 60; lat += 30 {
		_, y := project(lat, 0)
		fmt.Fprintf(&b, `<line x1="0" y1="%.1f" x2="%.0f" y2="%.1f" stroke="#1c2447" stroke-width="0.4"/>`+"\n",
			y, widthUnits, y)
	}

	for _, el := range m.elements {
		b.WriteString(el)
		b.WriteByte('\n')
	}

	if m.title != "" {
		fmt.Fprintf(&b, `<text x="8" y="%.0f" font-size="9" fill="#e8e8ff">%s</text>`+"\n",
			heightUnits+12, esc(m.title))
	}
	x := 8.0
	for _, l := range legends {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.0f" r="3" fill="%s"/>`+"\n", x, heightUnits+22, esc(l.Color))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.0f" font-size="7" fill="#c8c8e8">%s</text>`+"\n",
			x+6, heightUnits+25, esc(l.Text))
		x += 12 + 4.2*float64(len(l.Text))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// NumElements reports how many drawable elements the scene holds.
func (m *Map) NumElements() int { return len(m.elements) }

// HeatRamp maps a value in [0,1] to a blue→red hex colour, used to paint
// battery depletion or link utilization.
func HeatRamp(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	r := int(60 + 195*v)
	g := int(90 * (1 - v))
	bl := int(220 * (1 - v))
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

// SortedKeys returns map keys in sorted order (deterministic SVG output
// for tests and diffs).
func SortedKeys[M ~map[int]V, V any](m M) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
