package viz

import (
	"strings"
	"testing"
)

func TestProject(t *testing.T) {
	tests := []struct {
		lat, lon float64
		wantX    float64
		wantY    float64
	}{
		{0, 0, 360, 180},
		{90, -180, 0, 0},
		{-90, 180, 720, 360},
		{45, -90, 180, 90},
	}
	for _, tt := range tests {
		x, y := project(tt.lat, tt.lon)
		if x != tt.wantX || y != tt.wantY {
			t.Errorf("project(%v,%v) = (%v,%v), want (%v,%v)", tt.lat, tt.lon, x, y, tt.wantX, tt.wantY)
		}
	}
}

func TestRenderStructure(t *testing.T) {
	m := NewMap("test scene")
	m.AddSite(40.7, -74.0, "#00ff00")
	m.AddSatellite(10, 20, true, "#ffcc00")
	m.AddSatellite(-10, -20, false, "#ffcc00")
	m.AddLink(0, 0, 10, 10, "#ff0000", 1)
	m.AddLabel(40.7, -74.0, "NYC", "#ffffff")
	if m.NumElements() != 5 {
		t.Fatalf("elements = %d", m.NumElements())
	}

	out := m.Render([]Legend{{Color: "#ffcc00", Text: "satellite"}})
	for _, want := range []string{
		"<svg", "</svg>", "<rect", "<circle", "<line", "NYC", "test scene", "satellite",
		"#444466", // eclipsed satellite darkening
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Valid-ish XML: balanced svg tags, no unescaped ampersands.
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Error("unbalanced svg tags")
	}
}

func TestEscaping(t *testing.T) {
	m := NewMap(`a<b>&"c"`)
	m.AddLabel(0, 0, "x<y&z", "#fff")
	out := m.Render(nil)
	if strings.Contains(out, "x<y") || strings.Contains(out, `a<b>`) {
		t.Error("unescaped XML specials in output")
	}
	if !strings.Contains(out, "x&lt;y&amp;z") {
		t.Error("expected escaped label")
	}
}

func TestAntimeridianSplit(t *testing.T) {
	m := NewMap("")
	m.AddLink(10, 170, 12, -170, "#fff", 1) // crosses the date line
	if m.NumElements() != 2 {
		t.Fatalf("crossing link rendered as %d segments, want 2", m.NumElements())
	}
	m2 := NewMap("")
	m2.AddLink(10, 20, 12, 40, "#fff", 1)
	if m2.NumElements() != 1 {
		t.Fatalf("normal link rendered as %d segments", m2.NumElements())
	}
	// A segment crossing the other way.
	m3 := NewMap("")
	m3.AddLink(0, -175, 0, 175, "#fff", 1)
	if m3.NumElements() != 2 {
		t.Fatalf("westward crossing rendered as %d segments", m3.NumElements())
	}
}

// TestAntimeridianSegmentsKeepStyle renders a crossing link and checks
// both half-segments carry the per-link colour and width, meet the map
// edges at ±180°, and share the midpoint latitude.
func TestAntimeridianSegmentsKeepStyle(t *testing.T) {
	m := NewMap("")
	m.AddLink(10, 170, 30, -170, "#ff8800", 2.5)
	out := m.Render(nil)
	if got := strings.Count(out, `stroke="#ff8800"`); got != 2 {
		t.Fatalf("coloured segments = %d, want 2 in:\n%s", got, out)
	}
	if got := strings.Count(out, `stroke-width="2.50"`); got != 2 {
		t.Fatalf("width-styled segments = %d, want 2 in:\n%s", got, out)
	}
	// East half ends at lon 180 (x=720), west half restarts at -180
	// (x=0), both at the midpoint latitude 20 (y=140).
	if !strings.Contains(out, `x2="720.0" y2="140.0"`) {
		t.Errorf("east segment does not end at the +180 edge:\n%s", out)
	}
	if !strings.Contains(out, `x1="0.0" y1="140.0"`) {
		t.Errorf("west segment does not restart at the -180 edge:\n%s", out)
	}
	// A non-crossing link keeps its style on the single segment.
	m2 := NewMap("")
	m2.AddLink(0, 10, 5, 20, "#00ffaa", 0.75)
	out2 := m2.Render(nil)
	if strings.Count(out2, `stroke="#00ffaa"`) != 1 || !strings.Contains(out2, `stroke-width="0.75"`) {
		t.Fatalf("plain link lost its style:\n%s", out2)
	}
}

func TestHeatRamp(t *testing.T) {
	cold := HeatRamp(0)
	hot := HeatRamp(1)
	if cold == hot {
		t.Error("ramp endpoints identical")
	}
	if HeatRamp(-5) != cold || HeatRamp(5) != hot {
		t.Error("ramp does not clamp")
	}
	if !strings.HasPrefix(cold, "#") || len(cold) != 7 {
		t.Errorf("bad colour format %q", cold)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Errorf("keys = %v", keys)
	}
}
