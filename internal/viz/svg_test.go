package viz

import (
	"strings"
	"testing"
)

func TestProject(t *testing.T) {
	tests := []struct {
		lat, lon float64
		wantX    float64
		wantY    float64
	}{
		{0, 0, 360, 180},
		{90, -180, 0, 0},
		{-90, 180, 720, 360},
		{45, -90, 180, 90},
	}
	for _, tt := range tests {
		x, y := project(tt.lat, tt.lon)
		if x != tt.wantX || y != tt.wantY {
			t.Errorf("project(%v,%v) = (%v,%v), want (%v,%v)", tt.lat, tt.lon, x, y, tt.wantX, tt.wantY)
		}
	}
}

func TestRenderStructure(t *testing.T) {
	m := NewMap("test scene")
	m.AddSite(40.7, -74.0, "#00ff00")
	m.AddSatellite(10, 20, true, "#ffcc00")
	m.AddSatellite(-10, -20, false, "#ffcc00")
	m.AddLink(0, 0, 10, 10, "#ff0000", 1)
	m.AddLabel(40.7, -74.0, "NYC", "#ffffff")
	if m.NumElements() != 5 {
		t.Fatalf("elements = %d", m.NumElements())
	}

	out := m.Render([]Legend{{Color: "#ffcc00", Text: "satellite"}})
	for _, want := range []string{
		"<svg", "</svg>", "<rect", "<circle", "<line", "NYC", "test scene", "satellite",
		"#444466", // eclipsed satellite darkening
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Valid-ish XML: balanced svg tags, no unescaped ampersands.
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Error("unbalanced svg tags")
	}
}

func TestEscaping(t *testing.T) {
	m := NewMap(`a<b>&"c"`)
	m.AddLabel(0, 0, "x<y&z", "#fff")
	out := m.Render(nil)
	if strings.Contains(out, "x<y") || strings.Contains(out, `a<b>`) {
		t.Error("unescaped XML specials in output")
	}
	if !strings.Contains(out, "x&lt;y&amp;z") {
		t.Error("expected escaped label")
	}
}

func TestAntimeridianSplit(t *testing.T) {
	m := NewMap("")
	m.AddLink(10, 170, 12, -170, "#fff", 1) // crosses the date line
	if m.NumElements() != 2 {
		t.Fatalf("crossing link rendered as %d segments, want 2", m.NumElements())
	}
	m2 := NewMap("")
	m2.AddLink(10, 20, 12, 40, "#fff", 1)
	if m2.NumElements() != 1 {
		t.Fatalf("normal link rendered as %d segments", m2.NumElements())
	}
	// A segment crossing the other way.
	m3 := NewMap("")
	m3.AddLink(0, -175, 0, 175, "#fff", 1)
	if m3.NumElements() != 2 {
		t.Fatalf("westward crossing rendered as %d segments", m3.NumElements())
	}
}

func TestHeatRamp(t *testing.T) {
	cold := HeatRamp(0)
	hot := HeatRamp(1)
	if cold == hot {
		t.Error("ramp endpoints identical")
	}
	if HeatRamp(-5) != cold || HeatRamp(5) != hot {
		t.Error("ramp does not clamp")
	}
	if !strings.HasPrefix(cold, "#") || len(cold) != 7 {
		t.Errorf("bad colour format %q", cold)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Errorf("keys = %v", keys)
	}
}
