package geo

import (
	"math"
	"testing"
	"testing/quick"
)

const floatTol = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func vecAlmostEqual(a, b Vec3, tol float64) bool {
	return almostEqual(a.X, b.X, tol) && almostEqual(a.Y, b.Y, tol) && almostEqual(a.Z, b.Z, tol)
}

func TestVecAddSub(t *testing.T) {
	tests := []struct {
		name string
		a, b Vec3
		sum  Vec3
		diff Vec3
	}{
		{"zeros", Vec3{}, Vec3{}, Vec3{}, Vec3{}},
		{"axes", Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{1, 1, 0}, Vec3{1, -1, 0}},
		{"negatives", Vec3{-1, 2, -3}, Vec3{4, -5, 6}, Vec3{3, -3, 3}, Vec3{-5, 7, -9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Add(tt.b); got != tt.sum {
				t.Errorf("Add = %v, want %v", got, tt.sum)
			}
			if got := tt.a.Sub(tt.b); got != tt.diff {
				t.Errorf("Sub = %v, want %v", got, tt.diff)
			}
		})
	}
}

func TestVecDotCross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := Vec3{0, 0, 1}

	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want %v", got, z)
	}
	if got := y.Cross(x); got != z.Scale(-1) {
		t.Errorf("y cross x = %v, want %v", got, z.Scale(-1))
	}
	if got := x.Dot(y); got != 0 {
		t.Errorf("x dot y = %v, want 0", got)
	}
	if got := (Vec3{1, 2, 3}).Dot(Vec3{4, 5, 6}); got != 32 {
		t.Errorf("dot = %v, want 32", got)
	}
}

func TestVecNormUnit(t *testing.T) {
	v := Vec3{3, 4, 0}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.NormSq(); got != 25 {
		t.Errorf("NormSq = %v, want 25", got)
	}
	u := v.Unit()
	if !almostEqual(u.Norm(), 1, floatTol) {
		t.Errorf("Unit().Norm() = %v, want 1", u.Norm())
	}
	if got := (Vec3{}).Unit(); got != (Vec3{}) {
		t.Errorf("zero Unit = %v, want zero vector", got)
	}
}

func TestVecAngleTo(t *testing.T) {
	tests := []struct {
		name string
		a, b Vec3
		want float64
	}{
		{"orthogonal", Vec3{1, 0, 0}, Vec3{0, 1, 0}, math.Pi / 2},
		{"parallel", Vec3{1, 2, 3}, Vec3{2, 4, 6}, 0},
		{"antiparallel", Vec3{1, 0, 0}, Vec3{-1, 0, 0}, math.Pi},
		{"45deg", Vec3{1, 0, 0}, Vec3{1, 1, 0}, math.Pi / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.AngleTo(tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("AngleTo = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVecRotateZ(t *testing.T) {
	v := Vec3{1, 0, 0}
	got := v.RotateZ(math.Pi / 2)
	if !vecAlmostEqual(got, Vec3{0, 1, 0}, floatTol) {
		t.Errorf("RotateZ(π/2) = %v, want (0,1,0)", got)
	}
	// Z component is invariant.
	w := Vec3{1, 2, 3}.RotateZ(1.234)
	if w.Z != 3 {
		t.Errorf("RotateZ changed Z: %v", w.Z)
	}
}

func TestVecRotateX(t *testing.T) {
	v := Vec3{0, 1, 0}
	got := v.RotateX(math.Pi / 2)
	if !vecAlmostEqual(got, Vec3{0, 0, 1}, floatTol) {
		t.Errorf("RotateX(π/2) = %v, want (0,0,1)", got)
	}
}

// Property: rotation preserves vector length.
func TestVecRotationPreservesNorm(t *testing.T) {
	f := func(x, y, z, angle float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) || math.IsNaN(angle) {
			return true
		}
		// Clamp to a sane numeric range; quick can generate huge values
		// where float rounding dominates.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		v := Vec3{clamp(x), clamp(y), clamp(z)}
		a := math.Mod(angle, 2*math.Pi)
		r := v.RotateZ(a)
		return almostEqual(v.Norm(), r.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the cross product is orthogonal to both operands.
func TestVecCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e3)
		}
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		c := a.Cross(b)
		scale := (1 + a.Norm()) * (1 + b.Norm())
		return math.Abs(c.Dot(a)) <= 1e-6*scale && math.Abs(c.Dot(b)) <= 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecDistanceTo(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 6, 3}
	if got := a.DistanceTo(b); got != 5 {
		t.Errorf("DistanceTo = %v, want 5", got)
	}
}
