// Package geo provides the geodetic and astronomical primitives used by the
// LSN simulator: 3-vectors, reference-frame conversions (ECI, ECEF,
// geodetic), Greenwich sidereal time, a low-precision solar ephemeris, and
// visibility geometry (elevation angles, line-of-sight ranges).
//
// Conventions: distances are kilometres, angles are radians unless a name
// says otherwise (e.g. LatDeg), and the inertial frame is the standard
// equatorial ECI frame with +Z through the north pole and +X toward the
// vernal equinox at the reference epoch.
package geo

import "math"

// Vec3 is a Cartesian 3-vector. The zero value is the origin.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 {
	return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z}
}

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 {
	return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z}
}

// Scale returns v scaled by k.
func (v Vec3) Scale(k float64) Vec3 {
	return Vec3{k * v.X, k * v.Y, k * v.Z}
}

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 {
	return v.X*w.X + v.Y*w.Y + v.Z*w.Z
}

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// NormSq returns the squared Euclidean length of v, avoiding a sqrt.
func (v Vec3) NormSq() float64 {
	return v.Dot(v)
}

// Unit returns v normalised to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// DistanceTo returns the Euclidean distance between v and w.
func (v Vec3) DistanceTo(w Vec3) float64 {
	return v.Sub(w).Norm()
}

// AngleTo returns the angle between v and w in radians, in [0, π].
// It is numerically robust near 0 and π (uses atan2 rather than acos).
func (v Vec3) AngleTo(w Vec3) float64 {
	cross := v.Cross(w).Norm()
	dot := v.Dot(w)
	return math.Atan2(cross, dot)
}

// RotateZ rotates v about the +Z axis by angle rad (right-handed).
func (v Vec3) RotateZ(rad float64) Vec3 {
	s, c := math.Sincos(rad)
	return Vec3{
		c*v.X - s*v.Y,
		s*v.X + c*v.Y,
		v.Z,
	}
}

// RotateX rotates v about the +X axis by angle rad (right-handed).
func (v Vec3) RotateX(rad float64) Vec3 {
	s, c := math.Sincos(rad)
	return Vec3{
		v.X,
		c*v.Y - s*v.Z,
		s*v.Y + c*v.Z,
	}
}
