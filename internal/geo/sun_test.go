package geo

import (
	"math"
	"testing"
	"time"
)

func TestSunDirectionUnitLength(t *testing.T) {
	base := time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 366; i++ {
		d := SunDirectionECI(base.AddDate(0, 0, i))
		if !almostEqual(d.Norm(), 1, 1e-12) {
			t.Fatalf("day %d: |sun| = %v, want 1", i, d.Norm())
		}
	}
}

func TestSunDeclinationAtSolstices(t *testing.T) {
	tests := []struct {
		name    string
		t       time.Time
		wantDec float64 // degrees
		tol     float64
	}{
		{"june solstice", time.Date(2026, time.June, 21, 12, 0, 0, 0, time.UTC), 23.44, 0.2},
		{"december solstice", time.Date(2026, time.December, 21, 12, 0, 0, 0, time.UTC), -23.44, 0.2},
		{"march equinox", time.Date(2026, time.March, 20, 12, 0, 0, 0, time.UTC), 0, 0.6},
		{"september equinox", time.Date(2026, time.September, 23, 12, 0, 0, 0, time.UTC), 0, 0.6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := SunDirectionECI(tt.t)
			dec := RadToDeg(math.Asin(d.Z))
			if !almostEqual(dec, tt.wantDec, tt.tol) {
				t.Errorf("declination = %v deg, want %v ± %v", dec, tt.wantDec, tt.tol)
			}
		})
	}
}

func TestSunDistanceKm(t *testing.T) {
	// Perihelion in early January (~0.983 AU), aphelion in early July (~1.017 AU).
	peri := SunDistanceKm(time.Date(2026, time.January, 4, 0, 0, 0, 0, time.UTC))
	aph := SunDistanceKm(time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC))
	if peri >= aph {
		t.Errorf("perihelion distance %v should be less than aphelion %v", peri, aph)
	}
	if !almostEqual(peri/AstronomicalUnitKm, 0.983, 0.002) {
		t.Errorf("perihelion = %v AU, want ~0.983", peri/AstronomicalUnitKm)
	}
	if !almostEqual(aph/AstronomicalUnitKm, 1.017, 0.002) {
		t.Errorf("aphelion = %v AU, want ~1.017", aph/AstronomicalUnitKm)
	}
}

func TestInUmbra(t *testing.T) {
	sun := Vec3{1, 0, 0}
	r := EarthRadiusKm + 550
	tests := []struct {
		name string
		pos  Vec3
		want bool
	}{
		{"subsolar", Vec3{r, 0, 0}, false},
		{"anti-solar (deep shadow)", Vec3{-r, 0, 0}, true},
		{"terminator above", Vec3{0, r, 0}, false},
		{"anti-solar offset outside cylinder", Vec3{-1000, EarthRadiusKm + 200, 0}, false},
		{"anti-solar small offset inside cylinder", Vec3{-r, 100, 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InUmbra(tt.pos, sun); got != tt.want {
				t.Errorf("InUmbra(%v) = %v, want %v", tt.pos, got, tt.want)
			}
		})
	}
}

func TestUmbraFractionOfCircularOrbit(t *testing.T) {
	// For a 550 km equatorial orbit with the Sun in the orbital plane the
	// eclipsed fraction under the cylindrical model is
	// asin(Re/r)/π ≈ 0.369. Sample the orbit and check.
	sun := Vec3{1, 0, 0}
	r := EarthRadiusKm + 550
	n := 100000
	inShadow := 0
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pos := Vec3{r * math.Cos(theta), r * math.Sin(theta), 0}
		if InUmbra(pos, sun) {
			inShadow++
		}
	}
	got := float64(inShadow) / float64(n)
	want := math.Asin(EarthRadiusKm/r) / math.Pi
	if !almostEqual(got, want, 1e-3) {
		t.Errorf("umbra fraction = %v, want %v", got, want)
	}
}

func TestSunRightAscensionAtEquinox(t *testing.T) {
	// At the March equinox the Sun crosses the vernal point: its ECI
	// direction is nearly +X (right ascension ~0).
	d := SunDirectionECI(time.Date(2026, time.March, 20, 14, 46, 0, 0, time.UTC))
	ra := RadToDeg(math.Atan2(d.Y, d.X))
	if math.Abs(ra) > 1.0 {
		t.Errorf("equinox right ascension = %v deg, want ~0", ra)
	}
}
