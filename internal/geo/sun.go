package geo

import (
	"math"
	"time"
)

// SunDirectionECI returns the unit vector from the Earth's centre toward
// the Sun in the ECI frame at time t. It implements the low-precision
// solar ephemeris from the Astronomical Almanac (accurate to ~0.01°,
// which is orders of magnitude tighter than the 1-minute slotting of the
// simulation requires).
func SunDirectionECI(t time.Time) Vec3 {
	d := JulianDate(t) - 2451545.0

	// Mean longitude and mean anomaly of the Sun, degrees.
	meanLon := math.Mod(280.460+0.9856474*d, 360)
	meanAnom := DegToRad(math.Mod(357.528+0.9856003*d, 360))

	// Ecliptic longitude with the equation-of-centre correction.
	eclLon := DegToRad(meanLon + 1.915*math.Sin(meanAnom) + 0.020*math.Sin(2*meanAnom))

	// Obliquity of the ecliptic.
	obliquity := DegToRad(23.439 - 0.0000004*d)

	sinLon, cosLon := math.Sincos(eclLon)
	sinObl, cosObl := math.Sincos(obliquity)
	return Vec3{
		cosLon,
		cosObl * sinLon,
		sinObl * sinLon,
	}.Unit()
}

// SunDistanceKm returns the Earth-Sun distance at time t in kilometres,
// using the same low-precision series as SunDirectionECI.
func SunDistanceKm(t time.Time) float64 {
	d := JulianDate(t) - 2451545.0
	meanAnom := DegToRad(math.Mod(357.528+0.9856003*d, 360))
	rAU := 1.00014 - 0.01671*math.Cos(meanAnom) - 0.00014*math.Cos(2*meanAnom)
	return rAU * AstronomicalUnitKm
}

// InUmbra reports whether a satellite at ECI position satPos is inside the
// Earth's shadow for the given unit Sun direction, using the standard
// cylindrical shadow model: the satellite is eclipsed when it lies on the
// anti-solar side of the Earth and within one Earth radius of the shadow
// axis. The cylindrical model over-counts eclipse by <1% of the orbit
// versus a full conical model — irrelevant at 1-minute slots.
func InUmbra(satPos, sunDir Vec3) bool {
	along := satPos.Dot(sunDir)
	if along >= 0 {
		// Sunlit side of the Earth.
		return false
	}
	perp := satPos.Sub(sunDir.Scale(along))
	return perp.Norm() < EarthRadiusKm
}
