package geo

import (
	"math"
	"time"
)

// Physical constants. Values follow WGS-84 / standard astrodynamics texts.
const (
	// EarthRadiusKm is the mean equatorial radius of the Earth.
	EarthRadiusKm = 6378.137
	// EarthMuKm3S2 is the Earth's gravitational parameter in km^3/s^2.
	EarthMuKm3S2 = 398600.4418
	// EarthFlattening is the WGS-84 flattening factor.
	EarthFlattening = 1.0 / 298.257223563
	// EarthRotationRadS is the Earth's sidereal rotation rate in rad/s.
	EarthRotationRadS = 7.2921150e-5
	// AstronomicalUnitKm is one AU in kilometres.
	AstronomicalUnitKm = 149597870.7
	// SolarRadiusKm is the radius of the Sun.
	SolarRadiusKm = 696000.0
)

// DegToRad converts degrees to radians.
func DegToRad(deg float64) float64 { return deg * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(rad float64) float64 { return rad * 180 / math.Pi }

// WrapTwoPi reduces an angle to [0, 2π).
func WrapTwoPi(rad float64) float64 {
	r := math.Mod(rad, 2*math.Pi)
	if r < 0 {
		r += 2 * math.Pi
	}
	return r
}

// LLA is a geodetic coordinate: latitude and longitude in degrees and
// altitude above the reference ellipsoid in kilometres.
type LLA struct {
	LatDeg float64
	LonDeg float64
	AltKm  float64
}

// J2000 is the standard astronomical reference epoch
// (2000-01-01 12:00:00 TT, approximated here as UTC).
var J2000 = time.Date(2000, time.January, 1, 12, 0, 0, 0, time.UTC)

// JulianDate returns the Julian date of t (UTC).
func JulianDate(t time.Time) float64 {
	const j2000JD = 2451545.0
	return j2000JD + t.Sub(J2000).Seconds()/86400.0
}

// GMST returns the Greenwich Mean Sidereal Time at t, in radians in
// [0, 2π). It uses the IAU-82 polynomial, which is accurate to well under
// a second of time over decades — far beyond what a 1-minute-slotted
// simulation needs.
func GMST(t time.Time) float64 {
	d := JulianDate(t) - 2451545.0
	// GMST in degrees (IAU-82, truncated).
	tCent := d / 36525.0
	gmstDeg := 280.46061837 + 360.98564736629*d +
		0.000387933*tCent*tCent - tCent*tCent*tCent/38710000.0
	return WrapTwoPi(DegToRad(gmstDeg))
}

// ECIToECEF rotates an ECI position into the Earth-fixed (ECEF) frame
// given the Greenwich sidereal angle gmstRad.
func ECIToECEF(v Vec3, gmstRad float64) Vec3 {
	return v.RotateZ(-gmstRad)
}

// ECEFToECI rotates an ECEF position into the inertial (ECI) frame given
// the Greenwich sidereal angle gmstRad.
func ECEFToECI(v Vec3, gmstRad float64) Vec3 {
	return v.RotateZ(gmstRad)
}

// LLAToECEF converts geodetic coordinates into an ECEF position using the
// WGS-84 ellipsoid.
func LLAToECEF(p LLA) Vec3 {
	lat := DegToRad(p.LatDeg)
	lon := DegToRad(p.LonDeg)
	sinLat, cosLat := math.Sincos(lat)
	sinLon, cosLon := math.Sincos(lon)

	e2 := EarthFlattening * (2 - EarthFlattening)
	n := EarthRadiusKm / math.Sqrt(1-e2*sinLat*sinLat)
	return Vec3{
		(n + p.AltKm) * cosLat * cosLon,
		(n + p.AltKm) * cosLat * sinLon,
		(n*(1-e2) + p.AltKm) * sinLat,
	}
}

// ECEFToLLA converts an ECEF position into geodetic coordinates using
// Bowring's iterative method (3 iterations, sub-metre convergence for any
// point above -10 km altitude).
func ECEFToLLA(v Vec3) LLA {
	e2 := EarthFlattening * (2 - EarthFlattening)
	p := math.Hypot(v.X, v.Y)
	lon := math.Atan2(v.Y, v.X)

	// Initial guess assumes a sphere.
	lat := math.Atan2(v.Z, p*(1-e2))
	var alt float64
	for i := 0; i < 4; i++ {
		sinLat := math.Sin(lat)
		n := EarthRadiusKm / math.Sqrt(1-e2*sinLat*sinLat)
		alt = p/math.Cos(lat) - n
		lat = math.Atan2(v.Z, p*(1-e2*n/(n+alt)))
	}
	return LLA{
		LatDeg: RadToDeg(lat),
		LonDeg: RadToDeg(lon),
		AltKm:  alt,
	}
}

// ElevationDeg returns the elevation angle, in degrees, of a target at
// ECEF position target as seen from an observer at ECEF position observer.
// Positive elevations mean the target is above the observer's local
// horizon. Returns -90 if the two positions coincide.
func ElevationDeg(observer, target Vec3) float64 {
	up := observer.Unit()
	los := target.Sub(observer)
	r := los.Norm()
	if r == 0 {
		return -90
	}
	sinEl := up.Dot(los) / r
	sinEl = math.Max(-1, math.Min(1, sinEl))
	return RadToDeg(math.Asin(sinEl))
}

// GreatCircleKm returns the great-circle surface distance between two
// geodetic points, treating the Earth as a sphere of mean radius.
func GreatCircleKm(a, b LLA) float64 {
	la1, lo1 := DegToRad(a.LatDeg), DegToRad(a.LonDeg)
	la2, lo2 := DegToRad(b.LatDeg), DegToRad(b.LonDeg)
	sinDLat := math.Sin((la2 - la1) / 2)
	sinDLon := math.Sin((lo2 - lo1) / 2)
	h := sinDLat*sinDLat + math.Cos(la1)*math.Cos(la2)*sinDLon*sinDLon
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// LineOfSightClear reports whether the straight segment between two ECI
// (or consistently ECEF) positions clears the Earth's surface by at least
// marginKm. Used to validate inter-satellite link geometry.
func LineOfSightClear(a, b Vec3, marginKm float64) bool {
	// Minimum distance from the origin to segment a-b.
	ab := b.Sub(a)
	denom := ab.NormSq()
	if denom == 0 {
		return a.Norm() >= EarthRadiusKm+marginKm
	}
	t := -a.Dot(ab) / denom
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := a.Add(ab.Scale(t))
	return closest.Norm() >= EarthRadiusKm+marginKm
}
