package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestJulianDate(t *testing.T) {
	tests := []struct {
		name string
		t    time.Time
		want float64
	}{
		{"J2000", J2000, 2451545.0},
		{"J2000 plus one day", J2000.Add(24 * time.Hour), 2451546.0},
		{"J2000 minus half day", J2000.Add(-12 * time.Hour), 2451544.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JulianDate(tt.t); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("JulianDate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGMSTRange(t *testing.T) {
	// GMST must always be within [0, 2π).
	base := time.Date(2026, time.March, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1000; i++ {
		g := GMST(base.Add(time.Duration(i) * 37 * time.Minute))
		if g < 0 || g >= 2*math.Pi {
			t.Fatalf("GMST out of range: %v", g)
		}
	}
}

func TestGMSTAdvancesSidereally(t *testing.T) {
	// Over one solar day GMST advances by ~0.9856° more than a full turn.
	t0 := time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)
	g0 := GMST(t0)
	g1 := GMST(t0.Add(24 * time.Hour))
	diff := WrapTwoPi(g1 - g0)
	wantDeg := 0.9856
	if !almostEqual(RadToDeg(diff), wantDeg, 0.01) {
		t.Errorf("daily GMST advance = %v deg, want ~%v", RadToDeg(diff), wantDeg)
	}
}

func TestECIECEFRoundTrip(t *testing.T) {
	f := func(x, y, z, gmst float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e5)
		}
		v := Vec3{clamp(x), clamp(y), clamp(z)}
		g := math.Mod(clamp(gmst), 2*math.Pi)
		back := ECEFToECI(ECIToECEF(v, g), g)
		return vecAlmostEqual(v, back, 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLLAToECEFKnownPoints(t *testing.T) {
	tests := []struct {
		name string
		lla  LLA
		want Vec3
		tol  float64
	}{
		{
			name: "equator prime meridian",
			lla:  LLA{0, 0, 0},
			want: Vec3{EarthRadiusKm, 0, 0},
			tol:  1e-6,
		},
		{
			name: "north pole",
			lla:  LLA{90, 0, 0},
			// Polar radius = a(1-f).
			want: Vec3{0, 0, EarthRadiusKm * (1 - EarthFlattening)},
			tol:  1e-6,
		},
		{
			name: "equator 90E at 550km",
			lla:  LLA{0, 90, 550},
			want: Vec3{0, EarthRadiusKm + 550, 0},
			tol:  1e-6,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := LLAToECEF(tt.lla)
			if !vecAlmostEqual(got, tt.want, tt.tol) {
				t.Errorf("LLAToECEF = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLLARoundTrip(t *testing.T) {
	f := func(lat, lon, alt float64) bool {
		la := math.Mod(math.Abs(lat), 89) // avoid pole longitude degeneracy
		lo := math.Mod(lon, 179.9)
		al := math.Mod(math.Abs(alt), 2000)
		if math.IsNaN(la) || math.IsNaN(lo) || math.IsNaN(al) {
			return true
		}
		p := LLA{la, lo, al}
		back := ECEFToLLA(LLAToECEF(p))
		return almostEqual(back.LatDeg, p.LatDeg, 1e-6) &&
			almostEqual(back.LonDeg, p.LonDeg, 1e-6) &&
			almostEqual(back.AltKm, p.AltKm, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElevationDeg(t *testing.T) {
	observer := LLAToECEF(LLA{0, 0, 0})
	tests := []struct {
		name   string
		target Vec3
		want   float64
		tol    float64
	}{
		{"zenith", LLAToECEF(LLA{0, 0, 550}), 90, 1e-6},
		{"same point", observer, -90, 1e-9},
		{"nadir", Vec3{}, -90, 1e-6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ElevationDeg(observer, tt.target); !almostEqual(got, tt.want, tt.tol) {
				t.Errorf("ElevationDeg = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestElevationHorizonSatellite(t *testing.T) {
	// A satellite at 550 km seen from a ground point 90° of arc away is
	// well below the horizon.
	observer := LLAToECEF(LLA{0, 0, 0})
	sat := LLAToECEF(LLA{0, 90, 550})
	if el := ElevationDeg(observer, sat); el >= 0 {
		t.Errorf("satellite over the horizon should have negative elevation, got %v", el)
	}
	// Directly overhead minus a few degrees of arc it is high in the sky.
	near := LLAToECEF(LLA{0, 2, 550})
	if el := ElevationDeg(observer, near); el < 60 {
		t.Errorf("nearly-overhead satellite elevation = %v, want > 60", el)
	}
}

func TestGreatCircleKm(t *testing.T) {
	tests := []struct {
		name string
		a, b LLA
		want float64
		tol  float64
	}{
		{"same point", LLA{10, 20, 0}, LLA{10, 20, 0}, 0, 1e-9},
		{"quarter circumference", LLA{0, 0, 0}, LLA{0, 90, 0}, math.Pi / 2 * EarthRadiusKm, 1e-6},
		{"pole to equator", LLA{90, 0, 0}, LLA{0, 0, 0}, math.Pi / 2 * EarthRadiusKm, 1e-6},
		{"antipodal", LLA{0, 0, 0}, LLA{0, 180, 0}, math.Pi * EarthRadiusKm, 1e-6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := GreatCircleKm(tt.a, tt.b); !almostEqual(got, tt.want, tt.tol) {
				t.Errorf("GreatCircleKm = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLineOfSightClear(t *testing.T) {
	altKm := 550.0
	a := Vec3{EarthRadiusKm + altKm, 0, 0}
	b := Vec3{-(EarthRadiusKm + altKm), 0, 0} // antipodal: segment passes through Earth's centre
	if LineOfSightClear(a, b, 0) {
		t.Error("antipodal satellites should not have line of sight")
	}
	c := Vec3{0, EarthRadiusKm + altKm, 0} // 90° apart: chord clears surface? chord midpoint at r/√2 < R, blocked
	if LineOfSightClear(a, c, 0) {
		t.Error("90-degree-separated LEO satellites should be blocked by the Earth")
	}
	// Neighbouring satellites 10° apart see each other.
	d := a.RotateZ(DegToRad(10))
	if !LineOfSightClear(a, d, 0) {
		t.Error("10-degree-separated satellites should have line of sight")
	}
	// Degenerate: same position, above the surface.
	if !LineOfSightClear(a, a, 0) {
		t.Error("coincident orbital points should be clear")
	}
}

func TestGMSTReferenceValue(t *testing.T) {
	// At the J2000 epoch (2000-01-01 12:00 UT) GMST is 280.4606 degrees
	// (Astronomical Almanac). Our truncated IAU-82 series should land
	// within a few hundredths of a degree.
	got := RadToDeg(GMST(J2000))
	if !almostEqual(got, 280.4606, 0.05) {
		t.Errorf("GMST(J2000) = %v deg, want ~280.46", got)
	}
}
