package grid

import (
	"math"
	"testing"

	"spacebooking/internal/geo"
)

func TestTriangularSitesCounts(t *testing.T) {
	tests := []struct {
		subdivisions int
		want         int
	}{
		{0, 20},
		{1, 80},
		{2, 320},
		{3, 1280},
		{5, 20480},
	}
	for _, tt := range tests {
		sites, err := TriangularSites(tt.subdivisions)
		if err != nil {
			t.Fatalf("subdivisions %d: %v", tt.subdivisions, err)
		}
		if len(sites) != tt.want {
			t.Errorf("subdivisions %d: got %d sites, want %d", tt.subdivisions, len(sites), tt.want)
		}
	}
}

func TestTriangularSitesInvalidSubdivisions(t *testing.T) {
	for _, s := range []int{-1, 9} {
		if _, err := TriangularSites(s); err == nil {
			t.Errorf("subdivisions %d: expected error", s)
		}
	}
}

func TestTriangularSitesValidCoordinates(t *testing.T) {
	sites, err := TriangularSites(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if s.LatDeg < -90 || s.LatDeg > 90 {
			t.Fatalf("site %d latitude %v out of range", s.ID, s.LatDeg)
		}
		if s.LonDeg < -180 || s.LonDeg > 180 {
			t.Fatalf("site %d longitude %v out of range", s.ID, s.LonDeg)
		}
	}
}

func TestTriangularSitesRoughlyUniform(t *testing.T) {
	// Centroids of an icosphere tiling are nearly uniform over the
	// sphere; the fraction with |lat| < 30° should be close to the area
	// fraction sin(30°) = 0.5.
	sites, err := TriangularSites(4)
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for _, s := range sites {
		if math.Abs(s.LatDeg) < 30 {
			low++
		}
	}
	frac := float64(low) / float64(len(sites))
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("fraction below 30 deg latitude = %v, want ~0.5", frac)
	}
}

func TestTriangularSitesDistinct(t *testing.T) {
	sites, err := TriangularSites(2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]bool, len(sites))
	for _, s := range sites {
		key := [2]int{int(s.LatDeg * 1e6), int(s.LonDeg * 1e6)}
		if seen[key] {
			t.Fatalf("duplicate centroid near (%v, %v)", s.LatDeg, s.LonDeg)
		}
		seen[key] = true
	}
}

func TestGDPDensityPeaksAtCities(t *testing.T) {
	nyc := GDPDensity(40.7, -74.0)
	pacific := GDPDensity(-40, -140) // empty South Pacific
	if nyc <= pacific {
		t.Errorf("GDP density at NYC (%v) should exceed open ocean (%v)", nyc, pacific)
	}
	if pacific > 0.01 {
		t.Errorf("open-ocean GDP density = %v, want ~0", pacific)
	}
	tokyo := GDPDensity(35.7, 139.7)
	if tokyo <= pacific {
		t.Errorf("GDP density at Tokyo (%v) should exceed open ocean (%v)", tokyo, pacific)
	}
}

func TestFilterByGDP(t *testing.T) {
	sites, err := TriangularSites(4)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := FilterByGDP(sites, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 100 {
		t.Fatalf("kept %d, want 100", len(kept))
	}
	// Weights must be non-increasing and IDs dense.
	for i := range kept {
		if kept[i].ID != i {
			t.Errorf("site %d has ID %d", i, kept[i].ID)
		}
		if i > 0 && kept[i].Weight > kept[i-1].Weight {
			t.Errorf("weights not sorted at %d: %v > %v", i, kept[i].Weight, kept[i-1].Weight)
		}
	}
	// Every kept site should be on or near an economic land mass: its
	// weight must exceed the open-ocean background.
	background := GDPDensity(-40, -140)
	if kept[len(kept)-1].Weight <= background {
		t.Errorf("lowest kept weight %v not above ocean background %v", kept[len(kept)-1].Weight, background)
	}
}

func TestFilterByGDPErrors(t *testing.T) {
	sites, err := TriangularSites(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FilterByGDP(sites, 0); err == nil {
		t.Error("keep=0: expected error")
	}
	if _, err := FilterByGDP(sites, len(sites)+1); err == nil {
		t.Error("keep>len: expected error")
	}
}

func TestFilterByGDPDoesNotMutateInput(t *testing.T) {
	sites, err := TriangularSites(2)
	if err != nil {
		t.Fatal(err)
	}
	origFirst := sites[0]
	if _, err := FilterByGDP(sites, 10); err != nil {
		t.Fatal(err)
	}
	if sites[0] != origFirst {
		t.Error("FilterByGDP mutated its input slice")
	}
}

func TestPaperSites(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale tiling in -short mode")
	}
	sites, err := PaperSites()
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1761 {
		t.Fatalf("got %d sites, want 1761", len(sites))
	}
	// The busiest site should be near one of the top metros (within a few
	// hundred km of some economic centre).
	top := sites[0]
	minDist := math.Inf(1)
	for _, c := range economicCenters() {
		d := geo.GreatCircleKm(top.LLA(), geo.LLA{LatDeg: c.latDeg, LonDeg: c.lonDeg})
		minDist = math.Min(minDist, d)
	}
	if minDist > 500 {
		t.Errorf("top site (%v,%v) is %v km from the nearest economic centre", top.LatDeg, top.LonDeg, minDist)
	}
}

func TestSiteLLA(t *testing.T) {
	s := Site{ID: 3, LatDeg: 12.5, LonDeg: -45.25}
	lla := s.LLA()
	if lla.LatDeg != 12.5 || lla.LonDeg != -45.25 || lla.AltKm != 0 {
		t.Errorf("LLA = %+v", lla)
	}
}
