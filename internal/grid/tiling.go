// Package grid builds the ground-user geography of the simulation: a
// triangular tiling of the Earth's surface whose triangle centroids are
// the potential user sites, filtered by an economic-activity (GDP)
// density so that traffic sources and destinations cluster where real
// demand is — mirroring §VI-A of the paper (1761 sites after filtering).
package grid

import (
	"fmt"
	"math"
	"sort"

	"spacebooking/internal/geo"
)

// Site is a potential ground-user location: the centroid of one triangle
// of the tiling, annotated with its synthetic GDP weight.
type Site struct {
	ID     int
	LatDeg float64
	LonDeg float64
	// Weight is the unnormalised GDP density at the site. Higher weights
	// survive filtering and are picked more often as request endpoints.
	Weight float64
}

// LLA returns the site's geodetic position at ground level.
func (s Site) LLA() geo.LLA {
	return geo.LLA{LatDeg: s.LatDeg, LonDeg: s.LonDeg}
}

// icosahedron returns the 12 vertices and 20 faces of a unit icosahedron.
func icosahedron() ([]geo.Vec3, [][3]int) {
	phi := (1 + math.Sqrt(5)) / 2
	raw := []geo.Vec3{
		{X: -1, Y: phi}, {X: 1, Y: phi}, {X: -1, Y: -phi}, {X: 1, Y: -phi},
		{Y: -1, Z: phi}, {Y: 1, Z: phi}, {Y: -1, Z: -phi}, {Y: 1, Z: -phi},
		{X: phi, Z: -1}, {X: phi, Z: 1}, {X: -phi, Z: -1}, {X: -phi, Z: 1},
	}
	verts := make([]geo.Vec3, len(raw))
	for i, v := range raw {
		verts[i] = v.Unit()
	}
	faces := [][3]int{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	return verts, faces
}

// subdivide splits each triangular face into four, projecting new
// vertices back onto the unit sphere.
func subdivide(verts []geo.Vec3, faces [][3]int) ([]geo.Vec3, [][3]int) {
	type edge struct{ a, b int }
	midpoints := make(map[edge]int, len(faces)*3/2)
	mid := func(a, b int) int {
		if a > b {
			a, b = b, a
		}
		key := edge{a, b}
		if idx, ok := midpoints[key]; ok {
			return idx
		}
		m := verts[a].Add(verts[b]).Unit()
		verts = append(verts, m)
		midpoints[key] = len(verts) - 1
		return len(verts) - 1
	}

	newFaces := make([][3]int, 0, len(faces)*4)
	for _, f := range faces {
		ab := mid(f[0], f[1])
		bc := mid(f[1], f[2])
		ca := mid(f[2], f[0])
		newFaces = append(newFaces,
			[3]int{f[0], ab, ca},
			[3]int{f[1], bc, ab},
			[3]int{f[2], ca, bc},
			[3]int{ab, bc, ca},
		)
	}
	return verts, newFaces
}

// TriangularSites tiles the sphere with 20*4^subdivisions triangles and
// returns one site per triangle centroid. subdivisions=5 yields 20480
// triangles (~2.5e4 km^2 each), the granularity the paper's 1761-site
// GDP filtering starts from.
func TriangularSites(subdivisions int) ([]Site, error) {
	if subdivisions < 0 || subdivisions > 8 {
		return nil, fmt.Errorf("grid: subdivisions %d outside [0,8]", subdivisions)
	}
	verts, faces := icosahedron()
	for i := 0; i < subdivisions; i++ {
		verts, faces = subdivide(verts, faces)
	}

	sites := make([]Site, 0, len(faces))
	for i, f := range faces {
		c := verts[f[0]].Add(verts[f[1]]).Add(verts[f[2]]).Unit()
		lat := geo.RadToDeg(math.Asin(c.Z))
		lon := geo.RadToDeg(math.Atan2(c.Y, c.X))
		sites = append(sites, Site{ID: i, LatDeg: lat, LonDeg: lon})
	}
	return sites, nil
}

// economicCenter is a Gaussian bump of GDP density.
type economicCenter struct {
	name   string
	latDeg float64
	lonDeg float64
	weight float64 // relative GDP mass
	spread float64 // Gaussian sigma in km
}

// economicCenters approximates the global GDP distribution with ~45
// metropolitan/regional centres. This substitutes for the GDP raster the
// paper (via ICARUS) uses; see DESIGN.md substitution #2.
func economicCenters() []economicCenter {
	return []economicCenter{
		{"New York", 40.7, -74.0, 10, 600},
		{"Los Angeles", 34.1, -118.2, 7, 500},
		{"Chicago", 41.9, -87.6, 5, 400},
		{"Houston", 29.8, -95.4, 4, 400},
		{"Toronto", 43.7, -79.4, 3.5, 400},
		{"Mexico City", 19.4, -99.1, 3.5, 400},
		{"São Paulo", -23.6, -46.6, 4.5, 500},
		{"Buenos Aires", -34.6, -58.4, 2.5, 400},
		{"Bogotá", 4.7, -74.1, 1.5, 300},
		{"London", 51.5, -0.1, 8, 500},
		{"Paris", 48.9, 2.4, 6, 450},
		{"Frankfurt", 50.1, 8.7, 6, 500},
		{"Madrid", 40.4, -3.7, 3, 400},
		{"Milan", 45.5, 9.2, 4, 400},
		{"Amsterdam", 52.4, 4.9, 3.5, 300},
		{"Zurich", 47.4, 8.5, 2.5, 250},
		{"Stockholm", 59.3, 18.1, 2, 350},
		{"Warsaw", 52.2, 21.0, 2, 350},
		{"Moscow", 55.8, 37.6, 3.5, 500},
		{"Istanbul", 41.0, 28.9, 2.5, 350},
		{"Dubai", 25.2, 55.3, 3, 350},
		{"Riyadh", 24.7, 46.7, 2, 350},
		{"Tel Aviv", 32.1, 34.8, 1.5, 200},
		{"Mumbai", 19.1, 72.9, 4.5, 450},
		{"Delhi", 28.6, 77.2, 4.5, 450},
		{"Bangalore", 13.0, 77.6, 3, 350},
		{"Karachi", 24.9, 67.0, 1.5, 300},
		{"Dhaka", 23.8, 90.4, 1.5, 250},
		{"Bangkok", 13.8, 100.5, 2.5, 350},
		{"Singapore", 1.4, 103.8, 4, 250},
		{"Jakarta", -6.2, 106.8, 3, 350},
		{"Manila", 14.6, 121.0, 2, 300},
		{"Ho Chi Minh City", 10.8, 106.7, 1.5, 250},
		{"Hong Kong", 22.3, 114.2, 5, 300},
		{"Shenzhen", 22.5, 114.1, 5, 300},
		{"Shanghai", 31.2, 121.5, 8, 500},
		{"Beijing", 39.9, 116.4, 7, 500},
		{"Seoul", 37.6, 127.0, 6, 400},
		{"Tokyo", 35.7, 139.7, 9, 500},
		{"Osaka", 34.7, 135.5, 4, 350},
		{"Taipei", 25.0, 121.6, 3, 250},
		{"Sydney", -33.9, 151.2, 3.5, 400},
		{"Melbourne", -37.8, 145.0, 3, 400},
		{"Johannesburg", -26.2, 28.0, 2, 400},
		{"Lagos", 6.5, 3.4, 1.5, 350},
		{"Cairo", 30.0, 31.2, 2, 350},
		{"Nairobi", -1.3, 36.8, 1, 300},
	}
}

// GDPDensity returns the synthetic GDP density (arbitrary units) at a
// geodetic point: a sum of Gaussian bumps over the economic centres.
func GDPDensity(latDeg, lonDeg float64) float64 {
	p := geo.LLA{LatDeg: latDeg, LonDeg: lonDeg}
	total := 0.0
	for _, c := range economicCenters() {
		d := geo.GreatCircleKm(p, geo.LLA{LatDeg: c.latDeg, LonDeg: c.lonDeg})
		total += c.weight * math.Exp(-d*d/(2*c.spread*c.spread))
	}
	return total
}

// FilterByGDP keeps the `keep` highest-GDP sites, re-assigning dense IDs
// in descending weight order. It mirrors the paper's GDP-based exclusion
// of unlikely user areas (1761 sites survive at paper scale).
func FilterByGDP(sites []Site, keep int) ([]Site, error) {
	if keep <= 0 {
		return nil, fmt.Errorf("grid: keep must be positive, got %d", keep)
	}
	if keep > len(sites) {
		return nil, fmt.Errorf("grid: keep %d exceeds available sites %d", keep, len(sites))
	}

	scored := make([]Site, len(sites))
	copy(scored, sites)
	for i := range scored {
		scored[i].Weight = GDPDensity(scored[i].LatDeg, scored[i].LonDeg)
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Weight != scored[j].Weight {
			return scored[i].Weight > scored[j].Weight
		}
		return scored[i].ID < scored[j].ID // deterministic tie-break
	})
	out := scored[:keep:keep]
	for i := range out {
		out[i].ID = i
	}
	return out, nil
}

// PaperSites generates the paper-scale site set: the triangular tiling
// filtered down to 1761 GDP-weighted locations.
func PaperSites() ([]Site, error) {
	sites, err := TriangularSites(5)
	if err != nil {
		return nil, err
	}
	return FilterByGDP(sites, 1761)
}
