package energy_test

import (
	"fmt"

	"spacebooking/internal/energy"
)

// A satellite with a 100 J battery harvests 10 J per slot. Serving a
// request that costs 35 J in slot 0 drains the slot's solar first; the
// 25 J remainder becomes a battery deficit that later slots' solar pays
// back — Eq. (2) of the paper.
func ExampleBattery_Consume() {
	solar := []float64{10, 10, 10, 10, 10}
	battery, err := energy.NewBattery(100, solar, false)
	if err != nil {
		panic(err)
	}
	if err := battery.Consume(0, 35); err != nil {
		panic(err)
	}
	for t := 0; t < 5; t++ {
		fmt.Printf("slot %d: deficit %.0f J, level %.0f J\n",
			t, battery.DeficitAt(t), battery.LevelAt(t))
	}
	// Output:
	// slot 0: deficit 25 J, level 75 J
	// slot 1: deficit 15 J, level 85 J
	// slot 2: deficit 5 J, level 95 J
	// slot 3: deficit 0 J, level 100 J
	// slot 4: deficit 0 J, level 100 J
}

// VisitDeficit walks the same profile without mutating the ledger — the
// primitive behind CEAR's energy pricing.
func ExampleBattery_VisitDeficit() {
	solar := []float64{0, 20, 20}
	battery, err := energy.NewBattery(100, solar, false)
	if err != nil {
		panic(err)
	}
	battery.VisitDeficit(0, 30, func(t int, outstanding float64) bool {
		fmt.Printf("slot %d: would owe %.0f J\n", t, outstanding)
		return true
	})
	fmt.Printf("ledger untouched: deficit %.0f J\n", battery.DeficitAt(0))
	// Output:
	// slot 0: would owe 30 J
	// slot 1: would owe 10 J
	// ledger untouched: deficit 0 J
}
