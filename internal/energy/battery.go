// Package energy implements the satellite energy model of §III-C of the
// paper: solar panels harvest a per-slot energy input, a battery stores
// up to a fixed capacity, and serving a request in slot T_a creates a
// *battery deficit* that persists into future slots until replenished by
// leftover solar input (Eqs. (2)–(5)).
//
// The ledger tracks, per satellite:
//
//   - solarRemaining[t] — α_s(t), solar energy still unclaimed in slot t
//     after all committed reservations, and
//   - deficit[t] — the total outstanding battery deficit at the end of
//     slot t across all committed reservations (ϖ_s − b_s(t)).
//
// The recurrence of Eq. (2) telescopes — once the max() clamps to zero it
// stays zero — so a single consumption's deficit profile is a strictly
// decreasing run that the ledger walks in O(absorption span).
package energy

import (
	"fmt"
	"math"
)

// Battery is one satellite's energy ledger over the simulation horizon.
// The zero value is not usable; construct with NewBattery.
type Battery struct {
	capacityJ      float64
	solarRemaining []float64
	deficit        []float64
	// clamp selects baseline-mode accounting: the battery saturates at
	// empty instead of rejecting infeasible consumption. CEAR batteries
	// run with clamp=false and enforce b_s(T) >= 0 (constraint (7c)).
	clamp bool
	instr *Instruments
}

// NewBattery builds a ledger with the given capacity (joules) and
// per-slot solar input (joules per slot). The solar slice is copied.
// Per the paper we start with a full battery and untouched solar input.
func NewBattery(capacityJ float64, solarInputJ []float64, clamp bool) (*Battery, error) {
	if capacityJ <= 0 {
		return nil, fmt.Errorf("energy: capacity must be positive, got %v", capacityJ)
	}
	if len(solarInputJ) == 0 {
		return nil, fmt.Errorf("energy: empty solar input vector")
	}
	solar := make([]float64, len(solarInputJ))
	for t, s := range solarInputJ {
		if s < 0 || math.IsNaN(s) {
			return nil, fmt.Errorf("energy: invalid solar input %v at slot %d", s, t)
		}
		solar[t] = s
	}
	return &Battery{
		capacityJ:      capacityJ,
		solarRemaining: solar,
		deficit:        make([]float64, len(solarInputJ)),
		clamp:          clamp,
	}, nil
}

// Instrument attaches (or with nil, detaches) the counters this ledger
// advances. Plain field write: attach before the run starts. Clones
// inherit the handle, so trial ledgers count into the same registry.
func (b *Battery) Instrument(in *Instruments) { b.instr = in }

// Horizon returns the number of slots the ledger covers.
func (b *Battery) Horizon() int { return len(b.deficit) }

// CapacityJ returns the battery capacity ϖ_s.
func (b *Battery) CapacityJ() float64 { return b.capacityJ }

// DeficitAt returns the total outstanding deficit ϖ_s − b_s(t) at the end
// of slot t. Out-of-range slots report zero.
func (b *Battery) DeficitAt(t int) float64 {
	if t < 0 || t >= len(b.deficit) {
		return 0
	}
	return b.deficit[t]
}

// LevelAt returns the remaining battery energy b_s(t), per Eq. (4).
func (b *Battery) LevelAt(t int) float64 {
	return b.capacityJ - b.DeficitAt(t)
}

// SumDeficitJ returns the fleet-wide outstanding energy deficit
// Σ_s (ϖ_s − b_s(t)) at the end of slot t — the per-slot energy-debt
// telemetry behind the run report's time series. Allocation-free.
func SumDeficitJ(batteries []*Battery, t int) float64 {
	total := 0.0
	for _, b := range batteries {
		if b != nil {
			total += b.DeficitAt(t)
		}
	}
	return total
}

// UtilizationAt returns λ_s(t) = (ϖ_s − b_s(t)) / ϖ_s, per Eq. (9),
// clamped to [0, 1].
func (b *Battery) UtilizationAt(t int) float64 {
	if t < 0 || t >= len(b.deficit) {
		return 0
	}
	u := b.deficit[t] / b.capacityJ
	switch {
	case u < 0:
		return 0
	case u > 1:
		return 1
	default:
		return u
	}
}

// SolarRemainingAt returns α_s(t), the unclaimed solar energy of slot t.
func (b *Battery) SolarRemainingAt(t int) float64 {
	if t < 0 || t >= len(b.solarRemaining) {
		return 0
	}
	return b.solarRemaining[t]
}

// VisitDeficit walks, without mutating the ledger, the deficit profile
// Ω̄(ta, t) that consuming `joules` in slot ta would add: fn is invoked
// for every slot t >= ta while the outstanding deficit is positive, with
// the deficit value that would persist at the end of slot t. Returning
// false from fn stops the walk early.
//
// This is the primitive behind both CEAR's energy pricing (Eq. (12)'s
// second term sums price(t)·Ω̄(ta,t) over the deficit's lifetime) and
// feasibility checks.
func (b *Battery) VisitDeficit(ta int, joules float64, fn func(t int, outstanding float64) bool) {
	b.instr.countDeficitWalk()
	if joules <= 0 || ta < 0 || ta >= len(b.deficit) {
		return
	}
	remaining := joules
	for t := ta; t < len(b.deficit); t++ {
		if solar := b.solarRemaining[t]; solar < remaining {
			remaining -= solar
		} else {
			return
		}
		if !fn(t, remaining) {
			return
		}
	}
}

// Feasible reports whether consuming `joules` in slot ta keeps the
// battery within capacity (b_s(t) >= 0) at every slot, given the current
// committed state. Always true in clamp mode.
func (b *Battery) Feasible(ta int, joules float64) bool {
	if b.clamp {
		return true
	}
	ok := true
	b.VisitDeficit(ta, joules, func(t int, outstanding float64) bool {
		if b.deficit[t]+outstanding > b.capacityJ*(1+1e-12) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// DepletionError is returned by Consume when a non-clamping battery
// would be driven below empty.
type DepletionError struct {
	Slot      int
	DeficitJ  float64
	CapacityJ float64
}

func (e *DepletionError) Error() string {
	return fmt.Sprintf("energy: deficit %.1f J exceeds capacity %.1f J at slot %d",
		e.DeficitJ, e.CapacityJ, e.Slot)
}

// Consume commits an energy consumption of `joules` in slot ta,
// implementing lines 9–16 of Algorithm 1: solar input of slot ta (and of
// subsequent slots) is claimed first; whatever cannot be covered becomes
// battery deficit that persists until fully absorbed by later solar.
//
// In strict mode (clamp=false) the commit is atomic: if any slot would
// exceed capacity, the ledger is left untouched and a *DepletionError is
// returned. In clamp mode the posted deficit saturates at capacity (the
// battery pegs at empty) and the call always succeeds.
func (b *Battery) Consume(ta int, joules float64) error {
	if joules < 0 || math.IsNaN(joules) {
		return fmt.Errorf("energy: invalid consumption %v", joules)
	}
	if joules == 0 {
		return nil
	}
	if ta < 0 || ta >= len(b.deficit) {
		return fmt.Errorf("energy: slot %d outside horizon [0,%d)", ta, len(b.deficit))
	}
	if !b.clamp && !b.Feasible(ta, joules) {
		var failSlot int
		var failDeficit float64
		b.VisitDeficit(ta, joules, func(t int, outstanding float64) bool {
			if b.deficit[t]+outstanding > b.capacityJ {
				failSlot, failDeficit = t, b.deficit[t]+outstanding
				return false
			}
			return true
		})
		return &DepletionError{Slot: failSlot, DeficitJ: failDeficit, CapacityJ: b.capacityJ}
	}

	b.instr.countConsume()
	remaining := joules
	for t := ta; t < len(b.deficit); t++ {
		absorb := math.Min(remaining, b.solarRemaining[t])
		b.solarRemaining[t] -= absorb
		remaining -= absorb
		if remaining <= 0 {
			return nil
		}
		post := remaining
		if b.clamp {
			// The battery cannot discharge below empty: cap both the
			// posted deficit and the amount carried forward.
			if post > b.capacityJ {
				post = b.capacityJ
				remaining = b.capacityJ
			}
			if b.deficit[t]+post > b.capacityJ {
				post = b.capacityJ - b.deficit[t]
			}
		}
		b.deficit[t] += post
	}
	return nil
}

// Clone returns an independent deep copy of the ledger. CEAR uses clones
// to trial-apply a candidate reservation plan (whose slots interact
// through this very ledger) before committing it.
func (b *Battery) Clone() *Battery {
	solar := make([]float64, len(b.solarRemaining))
	copy(solar, b.solarRemaining)
	deficit := make([]float64, len(b.deficit))
	copy(deficit, b.deficit)
	return &Battery{
		capacityJ:      b.capacityJ,
		solarRemaining: solar,
		deficit:        deficit,
		clamp:          b.clamp,
		instr:          b.instr,
	}
}

// CopyFrom overwrites this ledger with src's contents, reusing the
// receiver's backing arrays when they have capacity. The transaction
// layer's snapshot arena uses it to snapshot and restore batteries
// without allocating a fresh Battery per touched satellite per request.
func (b *Battery) CopyFrom(src *Battery) {
	b.capacityJ = src.capacityJ
	b.solarRemaining = append(b.solarRemaining[:0], src.solarRemaining...)
	b.deficit = append(b.deficit[:0], src.deficit...)
	b.clamp = src.clamp
	b.instr = src.instr
}

// TrialConsume checks whether Consume(ta, joules) would succeed, without
// mutating the ledger: Consume's validation and feasibility logic with
// the commit skipped. Errors (including *DepletionError contents) and
// instrument counts match Consume's exactly, so trialling a single
// consumption this way is equivalent to applying it on a throwaway
// Clone — minus the clone.
func (b *Battery) TrialConsume(ta int, joules float64) error {
	if joules < 0 || math.IsNaN(joules) {
		return fmt.Errorf("energy: invalid consumption %v", joules)
	}
	if joules == 0 {
		return nil
	}
	if ta < 0 || ta >= len(b.deficit) {
		return fmt.Errorf("energy: slot %d outside horizon [0,%d)", ta, len(b.deficit))
	}
	if !b.clamp && !b.Feasible(ta, joules) {
		var failSlot int
		var failDeficit float64
		b.VisitDeficit(ta, joules, func(t int, outstanding float64) bool {
			if b.deficit[t]+outstanding > b.capacityJ {
				failSlot, failDeficit = t, b.deficit[t]+outstanding
				return false
			}
			return true
		})
		return &DepletionError{Slot: failSlot, DeficitJ: failDeficit, CapacityJ: b.capacityJ}
	}
	b.instr.countConsume()
	return nil
}

// ConsumeStep records one slot's ledger mutation made by ConsumeTraced:
// AbsorbedJ was claimed from the slot's unclaimed solar input and
// PostedJ was added to the slot's outstanding deficit. A traced
// consumption is a sequence of steps the two-phase commit layer can
// replay in reverse (Refund) to release a prepared reservation without
// a full-ledger snapshot, even after other reservations committed on
// the same battery in between.
type ConsumeStep struct {
	Slot      int
	AbsorbedJ float64
	PostedJ   float64
}

// ConsumeTraced is Consume with a mutation trace: every per-slot solar
// absorption and deficit posting is appended to steps (grown as needed
// and returned). The ledger mutation is exactly Consume's — same
// checks, same instrument counts, same float operations in the same
// order — so a traced commit is byte-identical to an untraced one.
func (b *Battery) ConsumeTraced(ta int, joules float64, steps []ConsumeStep) ([]ConsumeStep, error) {
	if joules < 0 || math.IsNaN(joules) {
		return steps, fmt.Errorf("energy: invalid consumption %v", joules)
	}
	if joules == 0 {
		return steps, nil
	}
	if ta < 0 || ta >= len(b.deficit) {
		return steps, fmt.Errorf("energy: slot %d outside horizon [0,%d)", ta, len(b.deficit))
	}
	if !b.clamp && !b.Feasible(ta, joules) {
		var failSlot int
		var failDeficit float64
		b.VisitDeficit(ta, joules, func(t int, outstanding float64) bool {
			if b.deficit[t]+outstanding > b.capacityJ {
				failSlot, failDeficit = t, b.deficit[t]+outstanding
				return false
			}
			return true
		})
		return steps, &DepletionError{Slot: failSlot, DeficitJ: failDeficit, CapacityJ: b.capacityJ}
	}

	b.instr.countConsume()
	remaining := joules
	for t := ta; t < len(b.deficit); t++ {
		absorb := math.Min(remaining, b.solarRemaining[t])
		b.solarRemaining[t] -= absorb
		remaining -= absorb
		if remaining <= 0 {
			steps = append(steps, ConsumeStep{Slot: t, AbsorbedJ: absorb})
			return steps, nil
		}
		post := remaining
		if b.clamp {
			if post > b.capacityJ {
				post = b.capacityJ
				remaining = b.capacityJ
			}
			if b.deficit[t]+post > b.capacityJ {
				post = b.capacityJ - b.deficit[t]
			}
		}
		b.deficit[t] += post
		steps = append(steps, ConsumeStep{Slot: t, AbsorbedJ: absorb, PostedJ: post})
	}
	return steps, nil
}

// Refund reverses one traced consumption step: the absorbed solar is
// returned to its slot and the posted deficit removed (clamped at
// zero against float dust). Refunding every step of a traced
// consumption, in any order, releases exactly the resources that
// consumption claimed — reservations committed in between are
// untouched, which is what lets a prepared reservation abort after
// concurrent commits on the same battery.
func (b *Battery) Refund(st ConsumeStep) {
	if st.Slot < 0 || st.Slot >= len(b.deficit) {
		return
	}
	b.solarRemaining[st.Slot] += st.AbsorbedJ
	if st.PostedJ != 0 {
		d := b.deficit[st.Slot] - st.PostedJ
		if d < 0 {
			d = 0
		}
		b.deficit[st.Slot] = d
	}
}

// SolarInputVector builds a per-slot solar input vector (joules per slot)
// from sunlit flags, a panel power in watts, and the slot length in
// seconds. Slots in umbra harvest nothing.
func SolarInputVector(sunlit []bool, panelWatts, slotSeconds float64) []float64 {
	out := make([]float64, len(sunlit))
	perSlot := panelWatts * slotSeconds
	for t, lit := range sunlit {
		if lit {
			out[t] = perSlot
		}
	}
	return out
}
