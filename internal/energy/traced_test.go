package energy

import (
	"math"
	"math/rand"
	"testing"
)

// ConsumeTraced must be an exact behavioural duplicate of Consume: same
// feasibility decisions, same ledger bits. The trace is extra output,
// never a different code path.
func TestConsumeTracedMatchesConsume(t *testing.T) {
	for _, clamp := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		a := mustBattery(t, 500, constSolar(12, 40), clamp)
		b := mustBattery(t, 500, constSolar(12, 40), clamp)
		var steps []ConsumeStep
		for i := 0; i < 200; i++ {
			ta := rng.Intn(12)
			j := rng.Float64() * 120
			errA := a.Consume(ta, j)
			var errB error
			steps, errB = b.ConsumeTraced(ta, j, steps[:0])
			if (errA == nil) != (errB == nil) {
				t.Fatalf("clamp=%v op %d: Consume err=%v, ConsumeTraced err=%v", clamp, i, errA, errB)
			}
			for tt := 0; tt < 12; tt++ {
				if a.SolarRemainingAt(tt) != b.SolarRemainingAt(tt) || a.DeficitAt(tt) != b.DeficitAt(tt) {
					t.Fatalf("clamp=%v op %d slot %d: ledgers diverged (solar %v vs %v, deficit %v vs %v)",
						clamp, i, tt, a.SolarRemainingAt(tt), b.SolarRemainingAt(tt), a.DeficitAt(tt), b.DeficitAt(tt))
				}
			}
		}
	}
}

// The recorded steps must account for exactly what the consume took:
// refunding every step returns the ledgers to (numerically) where they
// started, and never drives a deficit negative.
func TestRefundReversesTracedConsume(t *testing.T) {
	b := mustBattery(t, 400, constSolar(10, 30), false)
	// Pre-existing load so the traced consume walks several slots.
	if err := b.Consume(4, 100); err != nil {
		t.Fatal(err)
	}
	solarBefore := make([]float64, 10)
	deficitBefore := make([]float64, 10)
	for tt := 0; tt < 10; tt++ {
		solarBefore[tt] = b.SolarRemainingAt(tt)
		deficitBefore[tt] = b.DeficitAt(tt)
	}

	steps, err := b.ConsumeTraced(6, 90, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps recorded for a successful consume")
	}
	var taken float64
	for _, st := range steps {
		taken += st.AbsorbedJ
	}
	if math.Abs(taken+steps[len(steps)-1].PostedJ-90) > 1e-9 && steps[len(steps)-1].PostedJ == 0 {
		// All 90 J must be absorbed across the steps when nothing posts.
		t.Fatalf("steps account for %v J of 90", taken)
	}

	for i := len(steps) - 1; i >= 0; i-- {
		b.Refund(steps[i])
	}
	for tt := 0; tt < 10; tt++ {
		if math.Abs(b.SolarRemainingAt(tt)-solarBefore[tt]) > 1e-9 {
			t.Errorf("slot %d solar = %v, want %v after refund", tt, b.SolarRemainingAt(tt), solarBefore[tt])
		}
		if math.Abs(b.DeficitAt(tt)-deficitBefore[tt]) > 1e-9 {
			t.Errorf("slot %d deficit = %v, want %v after refund", tt, b.DeficitAt(tt), deficitBefore[tt])
		}
		if b.DeficitAt(tt) < 0 {
			t.Errorf("slot %d deficit %v < 0 after refund", tt, b.DeficitAt(tt))
		}
	}
}

func TestRefundClampsDeficitAtZero(t *testing.T) {
	b := mustBattery(t, 100, constSolar(4, 10), false)
	// A refund claiming more posted deficit than the ledger holds must
	// clamp, not go negative (over-release is resource-safe).
	b.Refund(ConsumeStep{Slot: 2, AbsorbedJ: 0, PostedJ: 50})
	if got := b.DeficitAt(2); got != 0 {
		t.Errorf("deficit = %v, want 0", got)
	}
}

func TestConsumeTracedInfeasibleLeavesNoTrace(t *testing.T) {
	b := mustBattery(t, 50, constSolar(4, 5), false)
	steps, err := b.ConsumeTraced(1, 1e6, nil)
	if err == nil {
		t.Fatal("infeasible consume succeeded")
	}
	if len(steps) != 0 {
		t.Fatalf("failed consume recorded %d steps", len(steps))
	}
	for tt := 0; tt < 4; tt++ {
		if b.DeficitAt(tt) != 0 {
			t.Errorf("slot %d deficit %v after failed consume", tt, b.DeficitAt(tt))
		}
	}
}
