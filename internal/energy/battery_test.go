package energy

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBattery(t *testing.T, capJ float64, solar []float64, clamp bool) *Battery {
	t.Helper()
	b, err := NewBattery(capJ, solar, clamp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func constSolar(n int, perSlot float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = perSlot
	}
	return s
}

func TestNewBatteryErrors(t *testing.T) {
	tests := []struct {
		name  string
		capJ  float64
		solar []float64
	}{
		{"zero capacity", 0, constSolar(4, 1)},
		{"negative capacity", -5, constSolar(4, 1)},
		{"empty solar", 100, nil},
		{"negative solar", 100, []float64{1, -1}},
		{"NaN solar", 100, []float64{1, math.NaN()}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewBattery(tt.capJ, tt.solar, false); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestFreshBatteryState(t *testing.T) {
	b := mustBattery(t, 100, constSolar(10, 5), false)
	if b.Horizon() != 10 {
		t.Errorf("Horizon = %d", b.Horizon())
	}
	if b.CapacityJ() != 100 {
		t.Errorf("CapacityJ = %v", b.CapacityJ())
	}
	for tt := 0; tt < 10; tt++ {
		if b.DeficitAt(tt) != 0 {
			t.Errorf("slot %d: deficit %v, want 0", tt, b.DeficitAt(tt))
		}
		if b.LevelAt(tt) != 100 {
			t.Errorf("slot %d: level %v, want 100", tt, b.LevelAt(tt))
		}
		if b.UtilizationAt(tt) != 0 {
			t.Errorf("slot %d: utilization %v, want 0", tt, b.UtilizationAt(tt))
		}
		if b.SolarRemainingAt(tt) != 5 {
			t.Errorf("slot %d: solar %v, want 5", tt, b.SolarRemainingAt(tt))
		}
	}
	// Out-of-range queries are zero, not panics.
	if b.DeficitAt(-1) != 0 || b.DeficitAt(99) != 0 || b.SolarRemainingAt(-1) != 0 {
		t.Error("out-of-range queries should be zero")
	}
}

func TestConsumeFullyCoveredBySolar(t *testing.T) {
	b := mustBattery(t, 100, constSolar(5, 10), false)
	if err := b.Consume(1, 7); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 5; tt++ {
		if b.DeficitAt(tt) != 0 {
			t.Errorf("slot %d: deficit %v, want 0 (solar covered everything)", tt, b.DeficitAt(tt))
		}
	}
	if b.SolarRemainingAt(1) != 3 {
		t.Errorf("solar at 1 = %v, want 3", b.SolarRemainingAt(1))
	}
}

func TestConsumeCreatesDecayingDeficit(t *testing.T) {
	// Solar 10/slot, consume 35 at slot 0:
	// deficit after slot 0 = 25, slot 1 = 15, slot 2 = 5, slot 3 = 0.
	b := mustBattery(t, 100, constSolar(6, 10), false)
	if err := b.Consume(0, 35); err != nil {
		t.Fatal(err)
	}
	want := []float64{25, 15, 5, 0, 0, 0}
	for tt, w := range want {
		if got := b.DeficitAt(tt); math.Abs(got-w) > 1e-9 {
			t.Errorf("slot %d: deficit %v, want %v", tt, got, w)
		}
	}
	// Solar in slots 0-3 fully claimed, slot 3 partially (5 of 10).
	wantSolar := []float64{0, 0, 0, 5, 10, 10}
	for tt, w := range wantSolar {
		if got := b.SolarRemainingAt(tt); math.Abs(got-w) > 1e-9 {
			t.Errorf("slot %d: solar %v, want %v", tt, got, w)
		}
	}
}

func TestConsumeInUmbraSlots(t *testing.T) {
	// No solar at all: deficit persists to the end of the horizon.
	b := mustBattery(t, 100, constSolar(4, 0), false)
	if err := b.Consume(1, 40); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 40, 40, 40}
	for tt, w := range want {
		if got := b.DeficitAt(tt); got != w {
			t.Errorf("slot %d: deficit %v, want %v", tt, got, w)
		}
	}
	if b.LevelAt(3) != 60 {
		t.Errorf("level = %v, want 60", b.LevelAt(3))
	}
	if b.UtilizationAt(3) != 0.4 {
		t.Errorf("utilization = %v, want 0.4", b.UtilizationAt(3))
	}
}

func TestConsumeStackingTwoRequests(t *testing.T) {
	b := mustBattery(t, 100, constSolar(6, 10), false)
	if err := b.Consume(0, 30); err != nil { // deficits 20,10,0...
		t.Fatal(err)
	}
	if err := b.Consume(1, 25); err != nil { // slot1 solar already used by req1
		t.Fatal(err)
	}
	// After req1: solar = [0,0,0,10,10,10], deficit = [20,10,0,0,0,0]
	// (req1's 30 J fully claimed the solar of slots 0-2).
	// Req2 at slot1: no solar left in slots 1-2 -> deficit 25 persists;
	// slot3 absorbs 10 -> 15; slot4 absorbs 10 -> 5; slot5 absorbs it.
	want := []float64{20, 35, 25, 15, 5, 0}
	for tt, w := range want {
		if got := b.DeficitAt(tt); math.Abs(got-w) > 1e-9 {
			t.Errorf("slot %d: deficit %v, want %v", tt, got, w)
		}
	}
}

func TestConsumeErrors(t *testing.T) {
	b := mustBattery(t, 100, constSolar(4, 1), false)
	if err := b.Consume(0, -1); err == nil {
		t.Error("negative joules should error")
	}
	if err := b.Consume(0, math.NaN()); err == nil {
		t.Error("NaN joules should error")
	}
	if err := b.Consume(-1, 5); err == nil {
		t.Error("negative slot should error")
	}
	if err := b.Consume(4, 5); err == nil {
		t.Error("slot beyond horizon should error")
	}
	if err := b.Consume(0, 0); err != nil {
		t.Errorf("zero joules should be a no-op, got %v", err)
	}
}

func TestConsumeStrictRejectsDepletion(t *testing.T) {
	b := mustBattery(t, 50, constSolar(4, 0), false)
	if err := b.Consume(0, 40); err != nil {
		t.Fatal(err)
	}
	err := b.Consume(1, 20) // would reach deficit 60 > 50
	if err == nil {
		t.Fatal("expected depletion error")
	}
	var de *DepletionError
	if !errors.As(err, &de) {
		t.Fatalf("error type = %T, want *DepletionError", err)
	}
	if de.CapacityJ != 50 {
		t.Errorf("error capacity = %v", de.CapacityJ)
	}
	// Atomicity: the failed consume must not have changed anything.
	want := []float64{40, 40, 40, 40}
	for tt, w := range want {
		if got := b.DeficitAt(tt); got != w {
			t.Errorf("slot %d: deficit %v, want %v (rollback)", tt, got, w)
		}
	}
}

func TestConsumeClampSaturatesAtEmpty(t *testing.T) {
	b := mustBattery(t, 50, constSolar(4, 0), true)
	if err := b.Consume(0, 80); err != nil {
		t.Fatalf("clamp mode must accept: %v", err)
	}
	for tt := 0; tt < 4; tt++ {
		if got := b.DeficitAt(tt); got != 50 {
			t.Errorf("slot %d: deficit %v, want 50 (pegged at empty)", tt, got)
		}
		if b.LevelAt(tt) != 0 {
			t.Errorf("slot %d: level %v, want 0", tt, b.LevelAt(tt))
		}
	}
	// Second consumption cannot push deficit past capacity.
	if err := b.Consume(1, 30); err != nil {
		t.Fatal(err)
	}
	if got := b.DeficitAt(2); got != 50 {
		t.Errorf("deficit = %v, want still 50", got)
	}
}

func TestClampedCarryIsBounded(t *testing.T) {
	// With clamping, an oversized consumption must not depress the ledger
	// for longer than draining a full battery would: capacity 30, solar
	// 10/slot resumes at slot 2 — a full battery drains in 3 solar slots.
	solar := []float64{0, 0, 10, 10, 10, 10, 10}
	b := mustBattery(t, 30, solar, true)
	if err := b.Consume(0, 1000); err != nil {
		t.Fatal(err)
	}
	if got := b.DeficitAt(4); got != 0 {
		t.Errorf("deficit at slot 4 = %v, want 0 (carry capped at capacity)", got)
	}
}

func TestFeasible(t *testing.T) {
	b := mustBattery(t, 50, constSolar(4, 0), false)
	if !b.Feasible(0, 50) {
		t.Error("exactly-capacity consumption should be feasible")
	}
	if b.Feasible(0, 50.1) {
		t.Error("over-capacity consumption should be infeasible")
	}
	if err := b.Consume(0, 30); err != nil {
		t.Fatal(err)
	}
	if !b.Feasible(2, 20) {
		t.Error("stacking to exactly capacity should be feasible")
	}
	if b.Feasible(2, 21) {
		t.Error("stacking past capacity should be infeasible")
	}
	// Clamp mode is always feasible.
	c := mustBattery(t, 10, constSolar(2, 0), true)
	if !c.Feasible(0, 1e9) {
		t.Error("clamp mode must always report feasible")
	}
}

func TestVisitDeficitMatchesTelescopedFormula(t *testing.T) {
	// Property (fresh battery, single consumption): the visited deficit at
	// slot T equals max(0, J - sum of solar over [ta..T]) — the telescoped
	// form of Eq. (2).
	f := func(rawJ float64, rawTa uint8, rawSolar []float64) bool {
		n := 20
		solar := make([]float64, n)
		for i := range solar {
			if i < len(rawSolar) {
				solar[i] = math.Mod(math.Abs(rawSolar[i]), 50)
				if math.IsNaN(solar[i]) {
					solar[i] = 0
				}
			}
		}
		j := math.Mod(math.Abs(rawJ), 500)
		if math.IsNaN(j) || j == 0 {
			return true
		}
		ta := int(rawTa) % n
		b, err := NewBattery(1e9, solar, false)
		if err != nil {
			return false
		}
		got := make(map[int]float64)
		b.VisitDeficit(ta, j, func(t int, out float64) bool {
			got[t] = out
			return true
		})
		cum := 0.0
		for t := ta; t < n; t++ {
			cum += solar[t]
			want := math.Max(0, j-cum)
			if math.Abs(got[t]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVisitDeficitDoesNotMutate(t *testing.T) {
	b := mustBattery(t, 100, constSolar(5, 10), false)
	b.VisitDeficit(0, 45, func(t int, out float64) bool { return true })
	for tt := 0; tt < 5; tt++ {
		if b.DeficitAt(tt) != 0 || b.SolarRemainingAt(tt) != 10 {
			t.Fatalf("VisitDeficit mutated ledger at slot %d", tt)
		}
	}
}

func TestVisitDeficitEarlyStop(t *testing.T) {
	b := mustBattery(t, 100, constSolar(10, 1), false)
	calls := 0
	b.VisitDeficit(0, 50, func(t int, out float64) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (early stop)", calls)
	}
}

func TestVisitDeficitDegenerate(t *testing.T) {
	b := mustBattery(t, 100, constSolar(4, 1), false)
	called := false
	b.VisitDeficit(0, 0, func(int, float64) bool { called = true; return true })
	b.VisitDeficit(-1, 10, func(int, float64) bool { called = true; return true })
	b.VisitDeficit(9, 10, func(int, float64) bool { called = true; return true })
	if called {
		t.Error("degenerate visits should not invoke fn")
	}
}

func TestClone(t *testing.T) {
	b := mustBattery(t, 100, constSolar(4, 5), false)
	if err := b.Consume(0, 12); err != nil {
		t.Fatal(err)
	}
	c := b.Clone()
	if err := c.Consume(1, 30); err != nil {
		t.Fatal(err)
	}
	// The original is unaffected by the clone's consumption.
	if b.DeficitAt(1) != c.DeficitAt(1) && b.DeficitAt(1) == 7 {
		t.Log("expected divergence confirmed")
	}
	if got := b.DeficitAt(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("original deficit at 1 = %v, want 2", got)
	}
	if got := c.DeficitAt(1); got <= b.DeficitAt(1) {
		t.Errorf("clone deficit %v should exceed original %v", got, b.DeficitAt(1))
	}
}

// Property: in strict mode, whatever sequence of feasible consumptions is
// applied, deficits stay within [0, capacity] and solarRemaining within
// [0, input].
func TestInvariantsUnderRandomFeasibleLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 30
		solar := make([]float64, n)
		for i := range solar {
			solar[i] = rng.Float64() * 20
		}
		capJ := 100.0
		b := mustBattery(t, capJ, solar, false)
		for step := 0; step < 50; step++ {
			ta := rng.Intn(n)
			j := rng.Float64() * 60
			if b.Feasible(ta, j) {
				if err := b.Consume(ta, j); err != nil {
					t.Fatalf("trial %d: feasible consume failed: %v", trial, err)
				}
			} else if err := b.Consume(ta, j); err == nil {
				t.Fatalf("trial %d: infeasible consume succeeded", trial)
			}
			for tt := 0; tt < n; tt++ {
				if d := b.DeficitAt(tt); d < -1e-9 || d > capJ+1e-6 {
					t.Fatalf("trial %d: deficit %v out of [0,%v] at slot %d", trial, d, capJ, tt)
				}
				if s := b.SolarRemainingAt(tt); s < -1e-9 || s > solar[tt]+1e-9 {
					t.Fatalf("trial %d: solar %v out of range at slot %d", trial, s, tt)
				}
			}
		}
	}
}

// Property: deficits are non-increasing over time for a single
// consumption (the profile decays as solar absorbs it).
func TestSingleConsumptionDeficitMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 25
		solar := make([]float64, n)
		for i := range solar {
			solar[i] = rng.Float64() * 15
		}
		b := mustBattery(t, 1e6, solar, false)
		ta := rng.Intn(n)
		if err := b.Consume(ta, rng.Float64()*200); err != nil {
			t.Fatal(err)
		}
		for tt := ta + 1; tt < n; tt++ {
			if b.DeficitAt(tt) > b.DeficitAt(tt-1)+1e-9 {
				t.Fatalf("trial %d: deficit increased from slot %d to %d", trial, tt-1, tt)
			}
		}
	}
}

func TestSolarInputVector(t *testing.T) {
	sunlit := []bool{true, false, true, true}
	got := SolarInputVector(sunlit, 20, 60)
	want := []float64{1200, 0, 1200, 1200}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slot %d: %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: clamp-mode deficits never exceed capacity, whatever the load.
func TestClampModeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		n := 25
		solar := make([]float64, n)
		for i := range solar {
			solar[i] = rng.Float64() * 10
		}
		capJ := 50.0
		b := mustBattery(t, capJ, solar, true)
		for step := 0; step < 80; step++ {
			if err := b.Consume(rng.Intn(n), rng.Float64()*200); err != nil {
				t.Fatalf("trial %d: clamp-mode consume failed: %v", trial, err)
			}
		}
		for tt := 0; tt < n; tt++ {
			d := b.DeficitAt(tt)
			if d < -1e-9 || d > capJ+1e-9 {
				t.Fatalf("trial %d slot %d: deficit %v outside [0,%v]", trial, tt, d, capJ)
			}
			if b.LevelAt(tt) < -1e-9 {
				t.Fatalf("trial %d slot %d: level below empty", trial, tt)
			}
		}
	}
}

// Property: Clone is observationally identical until one side mutates.
func TestCloneIsDeepAndIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	solar := make([]float64, 20)
	for i := range solar {
		solar[i] = rng.Float64() * 12
	}
	b := mustBattery(t, 200, solar, false)
	for i := 0; i < 10; i++ {
		ta := rng.Intn(20)
		j := rng.Float64() * 30
		if b.Feasible(ta, j) {
			if err := b.Consume(ta, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := b.Clone()
	for tt := 0; tt < 20; tt++ {
		if b.DeficitAt(tt) != c.DeficitAt(tt) || b.SolarRemainingAt(tt) != c.SolarRemainingAt(tt) {
			t.Fatalf("clone differs at slot %d before mutation", tt)
		}
	}
	if c.CapacityJ() != b.CapacityJ() || c.Horizon() != b.Horizon() {
		t.Error("clone metadata differs")
	}
}
