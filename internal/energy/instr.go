package energy

import "spacebooking/internal/obs"

// Instruments holds the package's observability counters. There is no
// package-global attachment point: netstate attaches one handle per
// State (to every battery it builds), so concurrent runs count into
// their own registries. Clones carry the parent's handle — a trial
// consumption counts like a committed one, matching the accounting the
// ledgers had when instruments were global.
type Instruments struct {
	// DeficitWalks counts VisitDeficit invocations — the primitive
	// behind CEAR's deficit pricing and every feasibility check.
	DeficitWalks *obs.Counter
	// Consumptions counts committed Consume calls across all batteries.
	Consumptions *obs.Counter
}

// countDeficitWalk counts one VisitDeficit call; a single branch when
// the battery carries no instruments.
func (in *Instruments) countDeficitWalk() {
	if in == nil {
		return
	}
	in.DeficitWalks.Inc()
}

// countConsume counts one committed consumption.
func (in *Instruments) countConsume() {
	if in == nil {
		return
	}
	in.Consumptions.Inc()
}
