package energy

import (
	"sync/atomic"

	"spacebooking/internal/obs"
)

// Instruments holds the package's observability counters. Batteries are
// constructed (and cloned) per satellite by netstate, so instruments
// attach at package level — sim wires them when a run carries a
// registry — and count across every ledger.
type Instruments struct {
	// DeficitWalks counts VisitDeficit invocations — the primitive
	// behind CEAR's deficit pricing and every feasibility check.
	DeficitWalks *obs.Counter
	// Consumptions counts committed Consume calls across all batteries.
	Consumptions *obs.Counter
}

// instruments is read with one atomic load per call site.
var instruments atomic.Pointer[Instruments]

// SetInstruments attaches (or with nil, detaches) the package counters.
// Safe to call concurrently with ledger operations.
func SetInstruments(in *Instruments) { instruments.Store(in) }

// countDeficitWalk counts one VisitDeficit call; a single branch when
// instruments are detached.
func countDeficitWalk() {
	if in := instruments.Load(); in != nil {
		in.DeficitWalks.Inc()
	}
}

// countConsume counts one committed consumption.
func countConsume() {
	if in := instruments.Load(); in != nil {
		in.Consumptions.Inc()
	}
}
