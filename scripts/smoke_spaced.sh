#!/usr/bin/env bash
# smoke_spaced.sh — end-to-end serving smoke, the CI gate for the
# booking daemon: build spaced and spaceload, start the daemon at small
# scale, fire a short closed-loop burst, assert a non-zero accept count,
# probe the hot-spot telemetry surface (/v1/hotspots,
# /debug/constellation.json, /debug/map.svg), then verify a clean
# SIGTERM drain (daemon exits 0 and logs its drained summary).
#
# A second pass repeats the burst against a two-shard cluster
# (-shards 2): /v1/stats must grow the per-shard section, at least one
# booking must cross the shard boundary (two-phase prepare against both
# shards), the drain must stay graceful, and the run report must carry
# the cluster.* reconciliation counters (the obsdiff gate).
#
# Usage: scripts/smoke_spaced.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SPACED_PID=""
cleanup() {
  if [[ -n "$SPACED_PID" ]]; then kill "$SPACED_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/spaced" ./cmd/spaced
go build -o "$WORK/spaceload" ./cmd/spaceload

LOG="$WORK/spaced.log"
"$WORK/spaced" -addr 127.0.0.1:0 -clock-rate 4 -queue-depth 64 -batch-size 8 >"$LOG" 2>&1 &
SPACED_PID=$!

# Environment construction takes a few seconds; wait for the listen line.
ADDR=""
for _ in $(seq 1 120); do
  ADDR="$(sed -n 's|^spaced listening on http://\(.*\)/$|\1|p' "$LOG")"
  [[ -n "$ADDR" ]] && break
  kill -0 "$SPACED_PID" 2>/dev/null || { cat "$LOG" >&2; echo "smoke_spaced: spaced exited before listening" >&2; exit 1; }
  sleep 1
done
[[ -n "$ADDR" ]] || { cat "$LOG" >&2; echo "smoke_spaced: spaced never started listening" >&2; exit 1; }
echo "smoke_spaced: daemon up on $ADDR"

SUMMARY="$("$WORK/spaceload" -addr "http://$ADDR" -mode closed -concurrency 4 -duration 3s \
  | tee /dev/stderr | sed -n 's/^SUMMARY //p')"
[[ -n "$SUMMARY" ]] || { echo "smoke_spaced: spaceload printed no SUMMARY line" >&2; exit 1; }

ACCEPTED="$(sed -n 's/.*accepted=\([0-9]*\).*/\1/p' <<<"$SUMMARY")"
ERRORS="$(sed -n 's/.*errors=\([0-9]*\).*/\1/p' <<<"$SUMMARY")"
[[ "${ACCEPTED:-0}" -gt 0 ]] || { echo "smoke_spaced: zero accepted bookings ($SUMMARY)" >&2; exit 1; }
[[ "${ERRORS:-1}" -eq 0 ]] || { echo "smoke_spaced: client errors during burst ($SUMMARY)" >&2; exit 1; }

# Hot-spot telemetry surface: the JSON endpoints must report tracking
# enabled and the map must be a well-formed SVG document.
HOTSPOTS="$(curl -fsS "http://$ADDR/v1/hotspots")"
grep -q '"enabled": *true' <<<"$HOTSPOTS" || { echo "smoke_spaced: /v1/hotspots not enabled: $HOTSPOTS" >&2; exit 1; }
grep -q '"links"' <<<"$HOTSPOTS" || { echo "smoke_spaced: /v1/hotspots missing links tracker" >&2; exit 1; }

CONSTELLATION="$(curl -fsS "http://$ADDR/debug/constellation.json")"
grep -q '"satellites"' <<<"$CONSTELLATION" || { echo "smoke_spaced: /debug/constellation.json missing satellites" >&2; exit 1; }

MAPSVG="$(curl -fsS "http://$ADDR/debug/map.svg")"
grep -q '<svg' <<<"$MAPSVG" || { echo "smoke_spaced: /debug/map.svg is not SVG" >&2; exit 1; }
grep -q '</svg>' <<<"$MAPSVG" || { echo "smoke_spaced: /debug/map.svg is truncated" >&2; exit 1; }
echo "smoke_spaced: hot-spot endpoints OK"

# Graceful drain: SIGTERM must produce an exit-0 daemon that logged the
# drained summary.
kill -TERM "$SPACED_PID"
wait "$SPACED_PID"
SPACED_PID=""
grep -q '^drained:' "$LOG" || { cat "$LOG" >&2; echo "smoke_spaced: no drained summary in daemon log" >&2; exit 1; }
echo "smoke_spaced: single-shard pass OK ($ACCEPTED accepts, clean drain)"

# --- Cluster mode: the same burst against two shard engines. ---
LOG2="$WORK/spaced-shards.log"
REPORT2="$WORK/spaced-shards-report.json"
"$WORK/spaced" -addr 127.0.0.1:0 -clock-rate 4 -queue-depth 64 -batch-size 8 \
  -shards 2 -router round-robin -report "$REPORT2" >"$LOG2" 2>&1 &
SPACED_PID=$!

ADDR2=""
for _ in $(seq 1 120); do
  ADDR2="$(sed -n 's|^spaced listening on http://\(.*\)/$|\1|p' "$LOG2")"
  [[ -n "$ADDR2" ]] && break
  kill -0 "$SPACED_PID" 2>/dev/null || { cat "$LOG2" >&2; echo "smoke_spaced: sharded spaced exited before listening" >&2; exit 1; }
  sleep 1
done
[[ -n "$ADDR2" ]] || { cat "$LOG2" >&2; echo "smoke_spaced: sharded spaced never started listening" >&2; exit 1; }
grep -q 'cluster     2 shards, round-robin router' "$LOG2" || { cat "$LOG2" >&2; echo "smoke_spaced: no cluster startup line" >&2; exit 1; }
echo "smoke_spaced: sharded daemon up on $ADDR2"

SUMMARY2="$("$WORK/spaceload" -addr "http://$ADDR2" -mode closed -concurrency 4 -duration 3s \
  | tee /dev/stderr | sed -n 's/^SUMMARY //p')"
ACCEPTED2="$(sed -n 's/.*accepted=\([0-9]*\).*/\1/p' <<<"$SUMMARY2")"
ERRORS2="$(sed -n 's/.*errors=\([0-9]*\).*/\1/p' <<<"$SUMMARY2")"
[[ "${ACCEPTED2:-0}" -gt 0 ]] || { echo "smoke_spaced: zero accepted bookings under -shards 2 ($SUMMARY2)" >&2; exit 1; }
[[ "${ERRORS2:-1}" -eq 0 ]] || { echo "smoke_spaced: client errors under -shards 2 ($SUMMARY2)" >&2; exit 1; }

# /v1/stats must expose the shard section: two rows, the router name,
# and at least one cross-shard booking (round-robin over a multi-plane
# constellation makes one essentially certain in a multi-second burst).
STATS="$(curl -fsS "http://$ADDR2/v1/stats")"
grep -q '"shards"' <<<"$STATS" || { echo "smoke_spaced: /v1/stats missing shard section: $STATS" >&2; exit 1; }
grep -q '"router": *"round-robin"' <<<"$STATS" || { echo "smoke_spaced: /v1/stats missing router: $STATS" >&2; exit 1; }
[[ "$(grep -co '"queue_depth"' <<<"$STATS")" -ge 1 ]] || { echo "smoke_spaced: shard rows malformed: $STATS" >&2; exit 1; }
grep -Eq '"prepared": *[1-9]' <<<"$STATS" || { echo "smoke_spaced: no prepares recorded under -shards 2: $STATS" >&2; exit 1; }
grep -Eq '"cross_shard": *[1-9]' <<<"$STATS" || { echo "smoke_spaced: no cross-shard bookings under -shards 2: $STATS" >&2; exit 1; }
echo "smoke_spaced: shard stats OK"

# Graceful drain, again — now through the cluster's two-phase intake.
kill -TERM "$SPACED_PID"
wait "$SPACED_PID"
SPACED_PID=""
grep -q '^drained:' "$LOG2" || { cat "$LOG2" >&2; echo "smoke_spaced: no drained summary from sharded daemon" >&2; exit 1; }

# The run report must carry the cluster reconciliation counters and
# survive an obsdiff self-diff (the perf-gate path stays cluster-aware).
grep -q '"cluster.aborted.total"' "$REPORT2" || { echo "smoke_spaced: cluster.aborted.total missing from report" >&2; exit 1; }
grep -q '"cluster.prepared.total"' "$REPORT2" || { echo "smoke_spaced: cluster.prepared.total missing from report" >&2; exit 1; }
go run ./cmd/obsdiff "$REPORT2" "$REPORT2" >/dev/null

echo "smoke_spaced: OK ($ACCEPTED accepts single-shard, $ACCEPTED2 accepts sharded, clean drains)"
