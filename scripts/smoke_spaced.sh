#!/usr/bin/env bash
# smoke_spaced.sh — end-to-end serving smoke, the CI gate for the
# booking daemon: build spaced and spaceload, start the daemon at small
# scale, fire a short closed-loop burst, assert a non-zero accept count,
# probe the hot-spot telemetry surface (/v1/hotspots,
# /debug/constellation.json, /debug/map.svg), then verify a clean
# SIGTERM drain (daemon exits 0 and logs its drained summary).
#
# Usage: scripts/smoke_spaced.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SPACED_PID=""
cleanup() {
  if [[ -n "$SPACED_PID" ]]; then kill "$SPACED_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/spaced" ./cmd/spaced
go build -o "$WORK/spaceload" ./cmd/spaceload

LOG="$WORK/spaced.log"
"$WORK/spaced" -addr 127.0.0.1:0 -clock-rate 4 -queue-depth 64 -batch-size 8 >"$LOG" 2>&1 &
SPACED_PID=$!

# Environment construction takes a few seconds; wait for the listen line.
ADDR=""
for _ in $(seq 1 120); do
  ADDR="$(sed -n 's|^spaced listening on http://\(.*\)/$|\1|p' "$LOG")"
  [[ -n "$ADDR" ]] && break
  kill -0 "$SPACED_PID" 2>/dev/null || { cat "$LOG" >&2; echo "smoke_spaced: spaced exited before listening" >&2; exit 1; }
  sleep 1
done
[[ -n "$ADDR" ]] || { cat "$LOG" >&2; echo "smoke_spaced: spaced never started listening" >&2; exit 1; }
echo "smoke_spaced: daemon up on $ADDR"

SUMMARY="$("$WORK/spaceload" -addr "http://$ADDR" -mode closed -concurrency 4 -duration 3s \
  | tee /dev/stderr | sed -n 's/^SUMMARY //p')"
[[ -n "$SUMMARY" ]] || { echo "smoke_spaced: spaceload printed no SUMMARY line" >&2; exit 1; }

ACCEPTED="$(sed -n 's/.*accepted=\([0-9]*\).*/\1/p' <<<"$SUMMARY")"
ERRORS="$(sed -n 's/.*errors=\([0-9]*\).*/\1/p' <<<"$SUMMARY")"
[[ "${ACCEPTED:-0}" -gt 0 ]] || { echo "smoke_spaced: zero accepted bookings ($SUMMARY)" >&2; exit 1; }
[[ "${ERRORS:-1}" -eq 0 ]] || { echo "smoke_spaced: client errors during burst ($SUMMARY)" >&2; exit 1; }

# Hot-spot telemetry surface: the JSON endpoints must report tracking
# enabled and the map must be a well-formed SVG document.
HOTSPOTS="$(curl -fsS "http://$ADDR/v1/hotspots")"
grep -q '"enabled": *true' <<<"$HOTSPOTS" || { echo "smoke_spaced: /v1/hotspots not enabled: $HOTSPOTS" >&2; exit 1; }
grep -q '"links"' <<<"$HOTSPOTS" || { echo "smoke_spaced: /v1/hotspots missing links tracker" >&2; exit 1; }

CONSTELLATION="$(curl -fsS "http://$ADDR/debug/constellation.json")"
grep -q '"satellites"' <<<"$CONSTELLATION" || { echo "smoke_spaced: /debug/constellation.json missing satellites" >&2; exit 1; }

MAPSVG="$(curl -fsS "http://$ADDR/debug/map.svg")"
grep -q '<svg' <<<"$MAPSVG" || { echo "smoke_spaced: /debug/map.svg is not SVG" >&2; exit 1; }
grep -q '</svg>' <<<"$MAPSVG" || { echo "smoke_spaced: /debug/map.svg is truncated" >&2; exit 1; }
echo "smoke_spaced: hot-spot endpoints OK"

# Graceful drain: SIGTERM must produce an exit-0 daemon that logged the
# drained summary.
kill -TERM "$SPACED_PID"
wait "$SPACED_PID"
SPACED_PID=""
grep -q '^drained:' "$LOG" || { cat "$LOG" >&2; echo "smoke_spaced: no drained summary in daemon log" >&2; exit 1; }

echo "smoke_spaced: OK ($ACCEPTED accepts, clean drain)"
