#!/usr/bin/env bash
# bench.sh — run the routing fast-path benchmark suite plus a short
# serving-layer load measurement, and emit a machine-readable
# BENCH_5.json (schema documented in EXPERIMENTS.md).
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME       go test -benchtime value (default 10x)
#   SERVE_DURATION  length of the spaced/spaceload closed-loop
#                   measurement (default 5s; 0 skips the serving row)
#
# The JSON is an array of objects, one per measurement, in run order.
# Micro-benchmark rows are {name, ns_per_op, bytes_per_op,
# allocs_per_op}; the serving row is {name: "SpaceloadClosedLoop",
# req_per_sec, p50_ms, p99_ms}. Only benchmarks that report allocations
# produce complete rows; the script passes -benchmem so every row is
# complete.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_5.json}"
BENCHTIME="${BENCHTIME:-10x}"
SERVE_DURATION="${SERVE_DURATION:-5s}"

# Root-package micro-benchmarks: the production CEAR request path (flat
# scratch-pooled search, its generic reference twin, and the
# budget-pruned variant) plus the single-search kernels.
ROOT_PATTERN='^(BenchmarkCEARHandle|BenchmarkCEARHandleGeneric|BenchmarkCEARHandlePruned|BenchmarkViewDijkstra|BenchmarkFlatViewSearch)$'
# Graph-package kernels: allocate-per-call vs scratch-reuse pairs.
GRAPH_PATTERN='^(BenchmarkShortestPath|BenchmarkShortestPathScratch|BenchmarkHopLimited|BenchmarkHopLimitedScratch)$'

RAW="$(mktemp)"
ROWS="$(mktemp)"
WORK="$(mktemp -d)"
SPACED_PID=""
cleanup() {
  if [[ -n "$SPACED_PID" ]]; then kill "$SPACED_PID" 2>/dev/null || true; fi
  rm -rf "$RAW" "$ROWS" "$WORK"
}
trap cleanup EXIT

go test -run '^$' -bench "$ROOT_PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW"
go test -run '^$' -bench "$GRAPH_PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/graph/ | tee -a "$RAW"

awk '
  /^Benchmark/ && NF >= 8 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}\n", \
      name, $3, $5, $7
  }
' "$RAW" > "$ROWS"

# Serving-layer measurement: a small-scale spaced daemon at max clock
# speed, hammered closed-loop by spaceload; the SUMMARY line carries
# sustained throughput and client-observed admission latency.
if [[ "$SERVE_DURATION" != "0" ]]; then
  echo "== serving layer: spaced + spaceload closed loop ($SERVE_DURATION) =="
  go build -o "$WORK/spaced" ./cmd/spaced
  go build -o "$WORK/spaceload" ./cmd/spaceload
  "$WORK/spaced" -addr 127.0.0.1:0 -clock-rate 0 >"$WORK/spaced.log" 2>&1 &
  SPACED_PID=$!
  ADDR=""
  for _ in $(seq 1 120); do
    ADDR="$(sed -n 's|^spaced listening on http://\(.*\)/$|\1|p' "$WORK/spaced.log")"
    [[ -n "$ADDR" ]] && break
    kill -0 "$SPACED_PID" 2>/dev/null || { cat "$WORK/spaced.log" >&2; echo "bench.sh: spaced exited before listening" >&2; exit 1; }
    sleep 1
  done
  [[ -n "$ADDR" ]] || { cat "$WORK/spaced.log" >&2; echo "bench.sh: spaced never started listening" >&2; exit 1; }

  SUMMARY="$("$WORK/spaceload" -addr "http://$ADDR" -mode closed -concurrency 4 -duration "$SERVE_DURATION" \
    | tee /dev/stderr | sed -n 's/^SUMMARY //p')"
  kill -TERM "$SPACED_PID"
  wait "$SPACED_PID" # non-zero = drain failed, and so does the script
  SPACED_PID=""
  [[ -n "$SUMMARY" ]] || { echo "bench.sh: spaceload printed no SUMMARY line" >&2; exit 1; }

  awk -v line="$SUMMARY" '
    BEGIN {
      n = split(line, kv, " ")
      for (i = 1; i <= n; i++) { split(kv[i], p, "="); v[p[1]] = p[2] }
      printf "  {\"name\": \"SpaceloadClosedLoop\", \"req_per_sec\": %s, \"p50_ms\": %s, \"p99_ms\": %s}\n", \
        v["req_per_sec"], v["p50_ms"], v["p99_ms"]
    }' >> "$ROWS"
fi

{
  echo "["
  sed '$!s/$/,/' "$ROWS"
  echo "]"
} > "$OUT"

echo "wrote $OUT"
