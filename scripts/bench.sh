#!/usr/bin/env bash
# bench.sh — run the routing fast-path benchmark suite and emit a
# machine-readable BENCH_4.json (schema documented in EXPERIMENTS.md).
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 10x)
#
# The JSON is an array of {name, ns_per_op, bytes_per_op, allocs_per_op}
# objects, one per benchmark, in run order. Only benchmarks that report
# allocations (b.ReportAllocs or -benchmem) produce complete rows; the
# script passes -benchmem so every row is complete.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_4.json}"
BENCHTIME="${BENCHTIME:-10x}"

# Root-package micro-benchmarks: the production CEAR request path (flat
# scratch-pooled search, its generic reference twin, and the
# budget-pruned variant) plus the single-search kernels.
ROOT_PATTERN='^(BenchmarkCEARHandle|BenchmarkCEARHandleGeneric|BenchmarkCEARHandlePruned|BenchmarkViewDijkstra|BenchmarkFlatViewSearch)$'
# Graph-package kernels: allocate-per-call vs scratch-reuse pairs.
GRAPH_PATTERN='^(BenchmarkShortestPath|BenchmarkShortestPathScratch|BenchmarkHopLimited|BenchmarkHopLimitedScratch)$'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$ROOT_PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW"
go test -run '^$' -bench "$GRAPH_PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/graph/ | tee -a "$RAW"

awk '
  BEGIN { print "["; sep = "" }
  /^Benchmark/ && NF >= 8 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
      sep, name, $3, $5, $7
    sep = ",\n"
  }
  END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
