#!/usr/bin/env bash
# bench.sh — run the routing fast-path benchmark suite plus short
# serving-layer load measurements, and emit a machine-readable
# BENCH_9.json (schema documented in EXPERIMENTS.md).
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME       go test -benchtime value (default 10x)
#   SERVE_DURATION  length of each spaced/spaceload closed-loop
#                   measurement (default 5s; 0 skips the serving rows)
#
# The JSON is an array of objects, one per measurement, in run order.
# Micro-benchmark rows are {name, ns_per_op, bytes_per_op,
# allocs_per_op}; the serving rows are {name, req_per_sec, p50_ms,
# p99_ms} — "SpaceloadClosedLoop" with tracing and hot-spot tracking
# off, "SpaceloadClosedLoopTraced" against spaced -trace-sample 1 with
# an audit log (tracing overhead under full sampling),
# "SpaceloadClosedLoopHotspots" with top-32 hot-spot tracking on
# (attribution overhead), "SpaceloadClosedLoopSpec" with the request
# pool generated from the specs/bench.json scenario spec (multi-class
# mix overhead on the client side; the server path is identical), and
# "SpaceloadClosedLoopShards{1,2,4,8}" — the cluster scaling sweep,
# identical client load against spaced -shards N so the throughput
# ratios measure shard-engine parallelism (two-phase commit overhead
# included). Only benchmarks that report allocations produce complete
# rows; the script passes -benchmem so every row is complete.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_9.json}"
BENCHTIME="${BENCHTIME:-10x}"
SERVE_DURATION="${SERVE_DURATION:-5s}"

# Root-package micro-benchmarks: the production CEAR request path (flat
# scratch-pooled search, its generic reference twin, and the
# budget-pruned variant) plus the single-search kernels.
ROOT_PATTERN='^(BenchmarkCEARHandle|BenchmarkCEARHandleGeneric|BenchmarkCEARHandlePruned|BenchmarkCEARHandleHotspots|BenchmarkViewDijkstra|BenchmarkFlatViewSearch)$'
# Graph-package kernels: allocate-per-call vs scratch-reuse pairs.
GRAPH_PATTERN='^(BenchmarkShortestPath|BenchmarkShortestPathScratch|BenchmarkHopLimited|BenchmarkHopLimitedScratch)$'

RAW="$(mktemp)"
ROWS="$(mktemp)"
WORK="$(mktemp -d)"
SPACED_PID=""
cleanup() {
  if [[ -n "$SPACED_PID" ]]; then kill "$SPACED_PID" 2>/dev/null || true; fi
  rm -rf "$RAW" "$ROWS" "$WORK"
}
trap cleanup EXIT

go test -run '^$' -bench "$ROOT_PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW"
go test -run '^$' -bench "$GRAPH_PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/graph/ | tee -a "$RAW"

awk '
  /^Benchmark/ && NF >= 8 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}\n", \
      name, $3, $5, $7
  }
' "$RAW" > "$ROWS"

# Serving-layer measurements: a small-scale spaced daemon at max clock
# speed, hammered closed-loop by spaceload; the SUMMARY line carries
# sustained throughput and client-observed admission latency. Runs
# three times — everything off (baseline), tracing at sample rate 1
# with an audit log, and hot-spot tracking on — so each optional
# observability layer's overhead is quantified against the same
# baseline.
serve_row() {
  local row_name="$1" conc="$2"; shift 2
  echo "== serving layer: spaced + spaceload closed loop, $row_name ($SERVE_DURATION) =="
  : >"$WORK/spaced.log"
  "$WORK/spaced" -addr 127.0.0.1:0 -clock-rate 0 "$@" >"$WORK/spaced.log" 2>&1 &
  SPACED_PID=$!
  local addr=""
  for _ in $(seq 1 120); do
    addr="$(sed -n 's|^spaced listening on http://\(.*\)/$|\1|p' "$WORK/spaced.log")"
    [[ -n "$addr" ]] && break
    kill -0 "$SPACED_PID" 2>/dev/null || { cat "$WORK/spaced.log" >&2; echo "bench.sh: spaced exited before listening" >&2; exit 1; }
    sleep 1
  done
  [[ -n "$addr" ]] || { cat "$WORK/spaced.log" >&2; echo "bench.sh: spaced never started listening" >&2; exit 1; }

  local summary
  summary="$("$WORK/spaceload" -addr "http://$addr" -mode closed -concurrency "$conc" -duration "$SERVE_DURATION" \
    ${SPACELOAD_EXTRA[@]+"${SPACELOAD_EXTRA[@]}"} \
    | tee /dev/stderr | sed -n 's/^SUMMARY //p')"
  kill -TERM "$SPACED_PID"
  wait "$SPACED_PID" # non-zero = drain failed, and so does the script
  SPACED_PID=""
  [[ -n "$summary" ]] || { echo "bench.sh: spaceload printed no SUMMARY line" >&2; exit 1; }

  awk -v line="$summary" -v name="$row_name" '
    BEGIN {
      n = split(line, kv, " ")
      for (i = 1; i <= n; i++) { split(kv[i], p, "="); v[p[1]] = p[2] }
      printf "  {\"name\": \"%s\", \"req_per_sec\": %s, \"p50_ms\": %s, \"p99_ms\": %s}\n", \
        name, v["req_per_sec"], v["p50_ms"], v["p99_ms"]
    }' >> "$ROWS"
}

if [[ "$SERVE_DURATION" != "0" ]]; then
  go build -o "$WORK/spaced" ./cmd/spaced
  go build -o "$WORK/spaceload" ./cmd/spaceload
  SPACELOAD_EXTRA=()
  serve_row SpaceloadClosedLoop 4 -hotspots=false
  serve_row SpaceloadClosedLoopTraced 4 -hotspots=false -trace-sample 1.0 -audit-log "$WORK/audit.jsonl"
  serve_row SpaceloadClosedLoopHotspots 4 -hotspots=true -hotspot-k 32
  # Scenario-spec request pool: same baseline daemon, but the client's
  # booking mix comes from the multi-class specs/bench.json scenario.
  SPACELOAD_EXTRA=(-spec specs/bench.json)
  serve_row SpaceloadClosedLoopSpec 4 -hotspots=false
  SPACELOAD_EXTRA=()
  # Cluster scaling sweep: the same closed-loop client (16 in flight,
  # enough to keep 8 shard loops busy) against spaced -shards N. The
  # Shards1 row is the single-writer baseline the ratios divide by.
  for n in 1 2 4 8; do
    serve_row "SpaceloadClosedLoopShards$n" 16 -hotspots=false -shards "$n" -router round-robin
  done
fi

{
  echo "["
  sed '$!s/$/,/' "$ROWS"
  echo "]"
} > "$OUT"

echo "wrote $OUT"
