#!/usr/bin/env bash
# scenario_smoke.sh — end-to-end scenario-engine smoke, the CI gate for
# the record/replay pipeline:
#   1. scenstat validates the checked-in example specs (schema gate),
#   2. cearsim -spec -record runs the smoke scenario and records every
#      admitted request into a trace,
#   3. cearsim -replay plays the recording back through the engine with
#      its own trace attached,
#   4. the two traces must be byte-identical (same decisions, prices,
#      rejection reasons — the determinism contract of the PR),
#   5. scenstat -servers runs the Erlang-B analytical twin on the
#      single-bottleneck spec and must report PASS within tolerance.
#
# Usage: scripts/scenario_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

go build -o "$WORK/scenstat" ./cmd/scenstat
go build -o "$WORK/cearsim" ./cmd/cearsim

echo "scenario_smoke: validating example specs"
"$WORK/scenstat" specs/smoke.json specs/erlangb.json specs/bench.json

echo "scenario_smoke: recording spec-driven run"
RECORDED="$WORK/recorded.jsonl"
"$WORK/cearsim" -scale small -seed 101 -spec specs/smoke.json \
  -record -trace "$RECORDED" >"$WORK/record.out"
grep -q '^scenario *smoke (spec)$' "$WORK/record.out" || \
  { cat "$WORK/record.out" >&2; echo "scenario_smoke: record run did not report the spec name" >&2; exit 1; }
grep -q '"kind":"request"' "$RECORDED" || \
  { echo "scenario_smoke: recorded trace holds no request records" >&2; exit 1; }

echo "scenario_smoke: replaying the recording"
REPLAYED="$WORK/replayed.jsonl"
"$WORK/cearsim" -scale small -seed 101 -replay "$RECORDED" \
  -record -trace "$REPLAYED" >"$WORK/replay.out"
grep -q '^scenario *smoke (replayed spec)$' "$WORK/replay.out" || \
  { cat "$WORK/replay.out" >&2; echo "scenario_smoke: replay run did not echo the recorded spec name" >&2; exit 1; }

if ! cmp -s "$RECORDED" "$REPLAYED"; then
  diff <(head -5 "$RECORDED") <(head -5 "$REPLAYED") >&2 || true
  echo "scenario_smoke: replay trace is not byte-identical to the recording" >&2
  exit 1
fi
echo "scenario_smoke: replay is byte-identical ($(wc -c <"$RECORDED") bytes)"

# The record and replay runs must also print identical result blocks
# (welfare, revenue, rejection breakdown) apart from the scenario mode
# line and wall-clock footer.
strip() { grep -v -e '^scenario' -e '^events' -e '^completed in' "$1"; }
if ! diff <(strip "$WORK/record.out") <(strip "$WORK/replay.out") >&2; then
  echo "scenario_smoke: replay printed a different result" >&2
  exit 1
fi

echo "scenario_smoke: Erlang-B analytical twin"
"$WORK/scenstat" -servers 12 specs/erlangb.json

echo "scenario_smoke: OK"
