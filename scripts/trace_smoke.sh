#!/usr/bin/env bash
# trace_smoke.sh — end-to-end tracing smoke, the CI gate for the audit
# pipeline: boot spaced with tracing on (-trace-sample 1 -audit-log),
# fire a short spaceload burst, then assert
#   * /debug/traces.json answers 200 with records,
#   * the drained audit log is non-empty, valid JSONL (auditstat exits 0
#     — it fails on any truncated or malformed line),
#   * the shutdown report's server.trace.* counters are live, gated
#     through obsdiff against the report itself.
#
# Usage: scripts/trace_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SPACED_PID=""
cleanup() {
  if [[ -n "$SPACED_PID" ]]; then kill "$SPACED_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/spaced" ./cmd/spaced
go build -o "$WORK/spaceload" ./cmd/spaceload
go build -o "$WORK/auditstat" ./cmd/auditstat
go build -o "$WORK/obsdiff" ./cmd/obsdiff

LOG="$WORK/spaced.log"
AUDIT="$WORK/audit.jsonl"
REPORT="$WORK/spaced-report.json"
"$WORK/spaced" -addr 127.0.0.1:0 -clock-rate 4 -queue-depth 64 -batch-size 8 \
  -trace-sample 1 -audit-log "$AUDIT" -report "$REPORT" >"$LOG" 2>&1 &
SPACED_PID=$!

ADDR=""
for _ in $(seq 1 120); do
  ADDR="$(sed -n 's|^spaced listening on http://\(.*\)/$|\1|p' "$LOG")"
  [[ -n "$ADDR" ]] && break
  kill -0 "$SPACED_PID" 2>/dev/null || { cat "$LOG" >&2; echo "trace_smoke: spaced exited before listening" >&2; exit 1; }
  sleep 1
done
[[ -n "$ADDR" ]] || { cat "$LOG" >&2; echo "trace_smoke: spaced never started listening" >&2; exit 1; }
echo "trace_smoke: daemon up on $ADDR (tracing at sample rate 1)"

SUMMARY="$("$WORK/spaceload" -addr "http://$ADDR" -mode closed -concurrency 4 -duration 3s \
  | tee /dev/stderr | sed -n 's/^SUMMARY //p')"
[[ -n "$SUMMARY" ]] || { echo "trace_smoke: spaceload printed no SUMMARY line" >&2; exit 1; }

# The recent-traces endpoint must answer 200 with at least one record.
TRACES="$WORK/traces.json"
CODE="$(curl -s -o "$TRACES" -w '%{http_code}' "http://$ADDR/debug/traces.json")"
[[ "$CODE" == "200" ]] || { echo "trace_smoke: /debug/traces.json answered HTTP $CODE" >&2; exit 1; }
grep -Eq '"count": *[1-9]' "$TRACES" || { echo "trace_smoke: /debug/traces.json holds no records" >&2; exit 1; }

kill -TERM "$SPACED_PID"
wait "$SPACED_PID"
SPACED_PID=""

# The drained audit log must be non-empty valid JSONL; auditstat fails
# on any malformed line and prints the phase table on success.
"$WORK/auditstat" -min 1 "$AUDIT"

# Gate the report's trace counters through obsdiff: a self-compare must
# exit 0, and the gated server.trace.* keys must exist and be live.
"$WORK/obsdiff" -max-regress '' \
  -gate counters.server.trace.records=0% \
  -gate counters.server.trace.sampled=0% \
  -gate counters.server.trace.dropped=0% \
  "$REPORT" "$REPORT" >/dev/null
grep -Eq '"server.trace.records": *[1-9]' "$REPORT" || \
  { echo "trace_smoke: server.trace.records is zero or missing from the run report" >&2; exit 1; }
grep -Eq '"server.trace.sampled": *[1-9]' "$REPORT" || \
  { echo "trace_smoke: server.trace.sampled is zero or missing at sample rate 1" >&2; exit 1; }
grep -q '"slo"' "$REPORT" || \
  { echo "trace_smoke: slo section missing from the run report" >&2; exit 1; }

echo "trace_smoke: OK"
